"""Preset system configurations (paper section 7.1, "Systems").

Each preset names one bar in the evaluation's figures:

================  =====================================================
key               paper name
================  =====================================================
spark_mem_only    MEM_ONLY Spark (LRU, recompute-on-miss)
spark_mem_disk    MEM+DISK Spark (LRU, spill-on-evict)
spark_alluxio     Spark + Alluxio (serialized tiered store)
spark_lrc         LRC on MEM+DISK Spark
spark_mrd         MRD on MEM+DISK Spark (with prefetching)
blaze             Blaze (profiling + autocache + cost model + ILP)
autocache         the +AutoCache ablation (Fig. 11)
costaware         the +CostAware ablation (Fig. 11)
lrc_mem_only      LRC on MEM_ONLY Spark (Fig. 12)
mrd_mem_only      MRD on MEM_ONLY Spark (Fig. 12)
blaze_mem_only    Blaze without disk support (Fig. 12)
blaze_no_profile  Blaze without the dependency-extraction phase (Fig. 13)
================  =====================================================

Additional conventional-policy presets (``spark_fifo`` etc.) cover the
policies the paper surveys but does not chart individually.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..caching.manager import SparkCacheManager
from ..caching.storage_level import StorageMode
from ..config import BlazeConfig
from ..core.udl import BlazeCacheManager
from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.cachemanager import CacheManager
    from ..core.profiler import LineageProfile


@dataclass(frozen=True)
class SystemSpec:
    """One system under test."""

    key: str
    label: str
    factory: Callable[..., "CacheManager"]
    #: whether the system runs the dependency-extraction phase first
    needs_profile: bool = False


def _spark(mode: StorageMode, policy: str) -> Callable[..., "CacheManager"]:
    def make(profile: "LineageProfile | None" = None, blaze_config: BlazeConfig | None = None):
        return SparkCacheManager(mode, policy)

    return make


def _blaze(**flag_overrides) -> Callable[..., "CacheManager"]:
    def make(profile: "LineageProfile | None" = None, blaze_config: BlazeConfig | None = None):
        base = blaze_config or BlazeConfig()
        config = dataclasses.replace(base, **flag_overrides)
        return BlazeCacheManager(config=config, profile=profile)

    return make


SYSTEMS: dict[str, SystemSpec] = {
    spec.key: spec
    for spec in [
        SystemSpec("spark_mem_only", "Spark (MEM)", _spark(StorageMode.MEM_ONLY, "lru")),
        SystemSpec("spark_mem_disk", "Spark (MEM+DISK)", _spark(StorageMode.MEM_AND_DISK, "lru")),
        SystemSpec("spark_alluxio", "Spark+Alluxio", _spark(StorageMode.ALLUXIO, "lru")),
        SystemSpec("spark_lrc", "LRC", _spark(StorageMode.MEM_AND_DISK, "lrc")),
        SystemSpec("spark_mrd", "MRD", _spark(StorageMode.MEM_AND_DISK, "mrd")),
        SystemSpec("spark_fifo", "FIFO", _spark(StorageMode.MEM_AND_DISK, "fifo")),
        SystemSpec("spark_lfu", "LFU", _spark(StorageMode.MEM_AND_DISK, "lfu")),
        SystemSpec("spark_lfuda", "LFUDA", _spark(StorageMode.MEM_AND_DISK, "lfuda")),
        SystemSpec("spark_gdwheel", "GDWheel", _spark(StorageMode.MEM_AND_DISK, "gdwheel")),
        SystemSpec("spark_tinylfu", "TinyLFU", _spark(StorageMode.MEM_AND_DISK, "tinylfu")),
        SystemSpec("spark_lecar", "LeCaR", _spark(StorageMode.MEM_AND_DISK, "lecar")),
        SystemSpec("blaze", "Blaze", _blaze(), needs_profile=True),
        SystemSpec(
            "autocache",
            "+AutoCache",
            _blaze(
                cost_aware_enabled=False,
                recompute_option_enabled=False,
                ilp_enabled=False,
                admission_enabled=False,
            ),
            needs_profile=True,
        ),
        SystemSpec(
            "costaware",
            "+CostAware",
            _blaze(
                cost_aware_enabled=True,
                recompute_option_enabled=False,
                ilp_enabled=False,
                admission_enabled=False,
            ),
            needs_profile=True,
        ),
        SystemSpec("lrc_mem_only", "LRC (MEM)", _spark(StorageMode.MEM_ONLY, "lrc")),
        SystemSpec("mrd_mem_only", "MRD (MEM)", _spark(StorageMode.MEM_ONLY, "mrd")),
        SystemSpec("blaze_mem_only", "Blaze (MEM)", _blaze(disk_enabled=False), needs_profile=True),
        SystemSpec(
            "blaze_no_profile",
            "Blaze w/o Profiling",
            _blaze(profiling_enabled=False),
            needs_profile=False,
        ),
    ]
}


def make_cache_manager(
    key: str,
    profile: "LineageProfile | None" = None,
    blaze_config: BlazeConfig | None = None,
):
    """Build the cache manager for a system preset."""
    spec = SYSTEMS.get(key)
    if spec is None:
        raise ConfigError(f"unknown system {key!r}; known: {sorted(SYSTEMS)}")
    return spec.factory(profile=profile, blaze_config=blaze_config)


def system_label(key: str) -> str:
    spec = SYSTEMS.get(key)
    if spec is None:
        raise ConfigError(f"unknown system {key!r}")
    return spec.label
