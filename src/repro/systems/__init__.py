"""System presets: every configuration in the paper's evaluation."""

from .presets import SYSTEMS, SystemSpec, make_system, system_label

__all__ = ["SYSTEMS", "SystemSpec", "make_system", "system_label"]
