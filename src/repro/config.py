"""Configuration objects for the simulated cluster and the Blaze stack.

The defaults model the paper's testbed (11 r5a.2xlarge nodes, 20 executors,
a 170 GB aggregate memory store and gp2 SSDs) scaled down so the simulation
runs on a laptop.  All capacities are in *modeled* bytes: workloads declare
per-element sizes so the working set can exceed the memory store without the
Python process actually holding gigabytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .errors import ConfigError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@dataclass(frozen=True)
class DiskConfig:
    """Performance model of the per-executor disk caching store.

    ``read_bytes_per_sec``/``write_bytes_per_sec`` model the sequential
    throughput of the paper's gp2 SSD.  Serialization costs are charged per
    byte on every disk write, deserialization on every read, scaled by the
    workload-specific ``ser_factor`` of the partition being moved (the paper
    observes SVD++ partitions serialize 2.5-6.4x slower than others).
    """

    read_bytes_per_sec: float = 250.0 * MiB
    write_bytes_per_sec: float = 200.0 * MiB
    ser_seconds_per_byte: float = 1.0 / (400.0 * MiB)
    deser_seconds_per_byte: float = 1.0 / (500.0 * MiB)
    capacity_bytes: float = 100.0 * GiB

    def __post_init__(self) -> None:
        if self.read_bytes_per_sec <= 0 or self.write_bytes_per_sec <= 0:
            raise ConfigError("disk throughput must be positive")
        if self.capacity_bytes <= 0:
            raise ConfigError("disk capacity must be positive")


@dataclass(frozen=True)
class NetworkConfig:
    """Network model used for shuffle fetches and remote cache reads."""

    bytes_per_sec: float = 1.25 * GiB  # 10 Gbps
    latency_seconds: float = 0.001

    def __post_init__(self) -> None:
        if self.bytes_per_sec <= 0:
            raise ConfigError("network throughput must be positive")
        if self.latency_seconds < 0:
            raise ConfigError("network latency must be non-negative")


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster.

    The paper runs 20 executors with 25 GB each and empirically caps the
    aggregate memory store at 170 GB (8.5 GB per executor).  The default
    here keeps the same *ratios* at one tenth of the absolute scale.
    """

    num_executors: int = 10
    slots_per_executor: int = 4
    memory_store_bytes: float = 8.5 * GiB
    disk: DiskConfig = field(default_factory=DiskConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    # How many completed jobs keep their shuffle outputs alive.  Spark's
    # ContextCleaner drops shuffle files once the producing RDDs go out of
    # scope; one job of retention reproduces the iterative-workload pattern
    # where recomputation has to re-run upstream map stages.
    shuffle_retention_jobs: int = 1
    # Remote cache reads are allowed (Spark semantics) but tasks are
    # scheduled for locality, so they are rare.
    allow_remote_cache_reads: bool = True
    # Opt-in structured tracing: when True (and no explicit tracer is
    # passed to BlazeContext) the context records an in-memory trace of
    # spans and cache events on the virtual clock.
    tracing_enabled: bool = False

    def __post_init__(self) -> None:
        if self.num_executors <= 0:
            raise ConfigError("num_executors must be positive")
        if self.slots_per_executor <= 0:
            raise ConfigError("slots_per_executor must be positive")
        if self.memory_store_bytes <= 0:
            raise ConfigError("memory_store_bytes must be positive")
        if self.shuffle_retention_jobs < 0:
            raise ConfigError("shuffle_retention_jobs must be >= 0")

    @property
    def total_memory_store_bytes(self) -> float:
        return self.memory_store_bytes * self.num_executors

    @property
    def total_slots(self) -> int:
        return self.slots_per_executor * self.num_executors


@dataclass(frozen=True)
class RemoteMemoryConfig:
    """Performance model of the cluster-wide remote-memory tier.

    The tier sits between the per-executor memory stores and their disks
    (a Sparkle-style disaggregated pool): one shared, capacity-limited
    store the whole fleet reads and writes over the network.  Blocks
    demoted here survive executor preemption — the pool belongs to the
    cluster, not to any executor — which is what makes it interesting
    under elastic fleets.  Reads and writes are charged a fixed network
    latency plus throughput time plus (de)serialization scaled by the
    block's ``ser_factor``, mirroring the disk model so Eq. 3/Eq. 4
    recovery predictions stay exact for remote-resident partitions.
    """

    enabled: bool = True
    capacity_bytes: float = 32.0 * GiB
    read_bytes_per_sec: float = 1.0 * GiB
    write_bytes_per_sec: float = 1.0 * GiB
    ser_seconds_per_byte: float = 1.0 / (400.0 * MiB)
    deser_seconds_per_byte: float = 1.0 / (500.0 * MiB)
    latency_seconds: float = 0.0005

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("remote memory capacity must be positive")
        if self.read_bytes_per_sec <= 0 or self.write_bytes_per_sec <= 0:
            raise ConfigError("remote memory throughput must be positive")
        if self.ser_seconds_per_byte < 0 or self.deser_seconds_per_byte < 0:
            raise ConfigError("remote memory ser/deser costs must be >= 0")
        if self.latency_seconds < 0:
            raise ConfigError("remote memory latency must be non-negative")


@dataclass(frozen=True)
class ElasticConfig:
    """Tunables of the elastic-fleet subsystem (``repro.elastic``).

    ``enabled`` is the master kill switch and defaults to off: with it
    down, a :class:`~repro.elastic.ScaleSchedule` handed to a context is
    inert, the remote-memory tier is never built, and every elastic
    counter stays exactly zero — runs are byte-identical to the
    fixed-fleet engine.  With it up, scale events fire at stage
    boundaries on the virtual clock (scale-up activates executors up to
    ``max_executors``, scale-down drains and deactivates down to
    ``min_executors``, preemption reuses the fault layer's crash wipe)
    and the remote tier, if its own ``enabled`` is up, joins the
    eviction ladder between memory and disk.
    """

    enabled: bool = False
    min_executors: int = 1
    max_executors: int = 64
    remote_memory: RemoteMemoryConfig = field(default_factory=RemoteMemoryConfig)

    def __post_init__(self) -> None:
        if self.min_executors < 1:
            raise ConfigError("min_executors must be >= 1")
        if self.max_executors < self.min_executors:
            raise ConfigError("max_executors must be >= min_executors")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the multi-tenant job service (``repro.service``).

    The service admits a seeded stream of applications over the virtual
    clock and interleaves their jobs on one shared executor fleet.  All
    knobs here only matter for :class:`~repro.service.JobService`; the
    legacy single-tenant ``BlazeContext`` path ignores them.
    """

    # Arrival process for submitted application streams: "poisson" draws
    # exponential inter-arrival gaps at ``arrival_rate_per_sec``;
    # "diurnal" thins a Poisson stream against a sinusoidal rate profile
    # with the given period and trough-to-peak ratio.
    arrival_process: str = "poisson"
    arrival_seed: int = 0
    arrival_rate_per_sec: float = 1.0
    diurnal_period_seconds: float = 60.0
    diurnal_trough_ratio: float = 0.2

    # Inter-job scheduling policy: "fifo" grants pending job requests in
    # submission order; "fair" grants the tenant with the least consumed
    # virtual service time (deterministic tie-breaks on tenant name and
    # submission order).
    inter_job_policy: str = "fifo"

    # Per-tenant memory-store quotas in bytes (aggregate across the
    # executor fleet).  Tenants absent from the mapping are unlimited.
    # An empty mapping disables quota enforcement entirely, which keeps
    # the single-tenant compatibility path byte-identical to the legacy
    # engine.
    tenant_quotas: Mapping[str, float] = field(default_factory=dict)

    # Structural cross-application lineage dedup: identical lineage
    # prefixes submitted by different tenants map to the same global RDD
    # ids, so their cached blocks are shared (hits on another tenant's
    # block trace as ``cache.shared_hit``).  Kill switch for the service
    # path; the BlazeContext shim always runs with identity ids.
    dedup_enabled: bool = True

    # Emit ``service.*`` trace instants (submission, grant, completion).
    # Off by default so single-tenant traces stay byte-identical.
    trace_service_events: bool = False

    def __post_init__(self) -> None:
        if self.arrival_process not in ("poisson", "diurnal"):
            raise ConfigError(
                f"unknown arrival_process: {self.arrival_process!r} "
                "(expected 'poisson' or 'diurnal')"
            )
        if self.arrival_rate_per_sec <= 0:
            raise ConfigError("arrival_rate_per_sec must be positive")
        if self.diurnal_period_seconds <= 0:
            raise ConfigError("diurnal_period_seconds must be positive")
        if not 0 < self.diurnal_trough_ratio <= 1:
            raise ConfigError("diurnal_trough_ratio must be in (0, 1]")
        if self.inter_job_policy not in ("fifo", "fair"):
            raise ConfigError(
                f"unknown inter_job_policy: {self.inter_job_policy!r} "
                "(expected 'fifo' or 'fair')"
            )
        for tenant, quota in self.tenant_quotas.items():
            if not isinstance(tenant, str) or not tenant:
                raise ConfigError("tenant_quotas keys must be non-empty strings")
            if quota <= 0:
                raise ConfigError(
                    f"tenant quota for {tenant!r} must be positive, got {quota!r}"
                )


@dataclass(frozen=True)
class ObsConfig:
    """Tunables of the observability layer (``repro.obs``).

    Everything here is a *pure reader* of existing deterministic state:
    the audit log, the virtual-clock sampler, and the exporters never
    emit trace events, advance the clock, consume randomness, or alter a
    caching decision, so every preset's JSONL trace is byte-identical
    with obs on or off (pinned by ``tests/integration/test_trace_identity``).
    """

    # Master kill switch.  Off by default: the hot paths then carry only
    # a ``None`` check per decision.
    enabled: bool = False

    # The decision audit log is a ring buffer: only the most recent
    # ``audit_ring_size`` admission/eviction/ILP entries are retained.
    audit_ring_size: int = 4096

    # Fixed virtual-time interval between occupancy samples, and a cap on
    # the number of samples retained (long service runs with sparse
    # arrivals would otherwise grow the series without bound).
    sample_interval_seconds: float = 1.0
    max_samples: int = 50_000

    def __post_init__(self) -> None:
        if self.audit_ring_size <= 0:
            raise ConfigError("audit_ring_size must be positive")
        if self.sample_interval_seconds <= 0:
            raise ConfigError("sample_interval_seconds must be positive")
        if self.max_samples <= 0:
            raise ConfigError("max_samples must be positive")


@dataclass(frozen=True)
class BlazeConfig:
    """Tunables of the Blaze unified decision layer (paper section 5).

    Engine kill switches at a glance (each is documented in detail at its
    field below):

    - ``incremental_decisions`` — epoch cost cache + victim index
      (decisions bit-identical either way);
    - ``fused_execution`` — fused data plane (observationally identical
      either way);
    - ``columnar_backend`` — columnar partition storage + vectorized
      fused kernels (traces byte-identical either way; see
      ``repro.storage`` and docs/performance.md);
    - ``fault_injection`` — deterministic fault injection (off by
      default; a FaultSchedule is inert without it);
    - ``service.dedup_enabled`` — cross-application lineage dedup on the
      :class:`~repro.service.JobService` path (see :class:`ServiceConfig`);
    - ``obs.enabled`` — decision audit log + virtual-clock sampler (pure
      readers; traces byte-identical either way, see :class:`ObsConfig`);
    - ``sharded_engine`` — fan task execution out across shard workers
      (``repro.shard``) while the coordinator replays the engine
      sequentially; traces byte-identical either way (docs/scaling.md);
    - ``elastic.enabled`` — elastic fleets + the remote-memory tier
      (``repro.elastic``; off by default, a ScaleSchedule is inert
      without it; see :class:`ElasticConfig` and docs/elasticity.md).
    """

    # Dependency-extraction phase (section 5.1 / 7.5).
    profiling_enabled: bool = True
    profiling_timeout_seconds: float = 10.0
    profiling_sample_fraction: float = 0.01

    # ILP (section 5.5): optimize partitions of the current job plus this
    # many upcoming jobs; the paper uses the current and the next job.
    ilp_horizon_jobs: int = 2
    ilp_time_budget_seconds: float = 5.0
    ilp_backend: str = "exact"  # "exact" (branch and bound) or "greedy"
    # Re-solve with updated recomputation costs until the memory set is
    # stable, at most this many rounds (cost_r depends on residency).
    ilp_refinement_rounds: int = 3

    # Whether disk capacity enters the ILP as a second constraint.
    constrain_disk: bool = False

    # Automatic caching (section 5.6).
    autocache_enabled: bool = True
    # Unified admission / cost-aware eviction (sections 4.1, 4.2).  The
    # evaluation's ablations toggle these:
    #   +AutoCache  = cost_aware/recompute/ilp/admission all off
    #   +CostAware  = cost_aware on, recompute/ilp/admission off
    #   Blaze       = everything on
    cost_aware_enabled: bool = True
    recompute_option_enabled: bool = True
    ilp_enabled: bool = True
    admission_enabled: bool = True
    # False models the Fig. 12 memory-only Blaze variant: victims are always
    # discarded and nothing is spilled.
    disk_enabled: bool = True

    # Incremental decision hot paths (epoch-cached costs + indexed victim
    # order).  Decisions are bit-identical either way — the flag exists as
    # a kill switch and as the baseline for `scripts/bench.py`.
    incremental_decisions: bool = True

    # Fused data plane (narrow-chain pipelining, bulk shuffle bucketing,
    # size-model memoization).  Execution is observationally identical
    # either way — same cache events, same virtual-time charges, same
    # decisions — so the flag is a kill switch and the baseline for the
    # data-plane cells of `scripts/bench.py`.
    fused_execution: bool = True

    # Columnar data plane (the ``repro.storage`` package).  Partitions
    # whose records are type-analyzable (numeric scalars, fixed tuples of
    # scalars, int-keyed pairs) are stored as chunked numpy record batches
    # at cache time, element-wise fused chains over them execute as
    # batch-at-a-time vectorized kernels (with per-split fallback to the
    # iterator pipeline), and spill/load becomes a codec transition
    # between ``columnar_codec`` (memory tier) and ``columnar_spill_codec``
    # (disk tier).  Execution is observationally identical either way —
    # every preset's JSONL trace is byte-identical columnar vs list — so
    # the flag is a kill switch and the baseline for the columnar cells of
    # `scripts/bench.py`.
    columnar_backend: bool = True
    columnar_chunk_rows: int = 4096
    columnar_codec: str = "none"
    columnar_spill_codec: str = "zlib"

    # Deterministic fault injection (the ``repro.faults`` subsystem).  The
    # kill switch defaults to off: a FaultSchedule handed to a context is
    # inert unless ``fault_injection`` is raised.  The retry knobs bound
    # the driver's task-reattempt loop (Spark's spark.task.maxFailures
    # analogue) with a linear virtual-time backoff per attempt.
    fault_injection: bool = False
    fault_max_task_retries: int = 4
    fault_retry_backoff_seconds: float = 0.25

    # Sharded simulation engine (the ``repro.shard`` package).  Executors
    # are split into ``num_shards`` contiguous groups; shard workers
    # speculatively compute partition data one stage ahead (supersteps:
    # bulk task dispatch, barrier exchange of shuffle buckets + residency
    # deltas), while the coordinator keeps the authoritative VirtualClock,
    # cache decisions, metrics, and trace — so JSONL traces stay
    # byte-identical to the single-process engine.  ``shard_transport``
    # picks the in-process zero-copy transport ("local", the default and
    # the trace-identity reference) or spawned worker processes
    # ("process"), where the parallelism actually pays.
    sharded_engine: bool = False
    num_shards: int = 2
    shard_transport: str = "local"

    # Multi-tenant job-service knobs (arrival stream, inter-job policy,
    # tenant quotas, cross-application dedup).  See :class:`ServiceConfig`.
    service: ServiceConfig = field(default_factory=ServiceConfig)

    # Observability layer (decision audit log, occupancy sampler,
    # Prometheus/dashboard exporters).  See :class:`ObsConfig`.
    obs: ObsConfig = field(default_factory=ObsConfig)

    # Elastic fleets + the cluster-wide remote-memory tier (the
    # ``repro.elastic`` package).  See :class:`ElasticConfig`.
    elastic: ElasticConfig = field(default_factory=ElasticConfig)

    def __post_init__(self) -> None:
        if self.ilp_horizon_jobs < 1:
            raise ConfigError("ilp_horizon_jobs must be >= 1")
        if self.ilp_backend not in ("exact", "greedy"):
            raise ConfigError(f"unknown ilp_backend: {self.ilp_backend!r}")
        if not 0 < self.profiling_sample_fraction <= 1:
            raise ConfigError("profiling_sample_fraction must be in (0, 1]")
        if self.ilp_refinement_rounds < 1:
            raise ConfigError("ilp_refinement_rounds must be >= 1")
        if self.columnar_chunk_rows < 1:
            raise ConfigError("columnar_chunk_rows must be >= 1")
        # Late import: repro.storage depends only on numpy/stdlib, but
        # config must stay importable before the storage registry is.
        from .storage.codecs import available_codecs, is_known_codec

        for codec_field in ("columnar_codec", "columnar_spill_codec"):
            name = getattr(self, codec_field)
            if not is_known_codec(name):
                raise ConfigError(
                    f"{codec_field}={name!r} is not a registered codec "
                    f"(available: {available_codecs()})"
                )
        if self.fault_max_task_retries < 1:
            raise ConfigError("fault_max_task_retries must be >= 1")
        if self.fault_retry_backoff_seconds < 0:
            raise ConfigError("fault_retry_backoff_seconds must be >= 0")
        if self.num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if self.shard_transport not in ("local", "process"):
            raise ConfigError(
                f"unknown shard_transport: {self.shard_transport!r} "
                "(expected 'local' or 'process')"
            )


def small_cluster() -> ClusterConfig:
    """A tiny cluster for unit tests (2 executors, modest memory)."""
    return ClusterConfig(
        num_executors=2,
        slots_per_executor=2,
        memory_store_bytes=64 * MiB,
        disk=DiskConfig(capacity_bytes=10 * GiB),
    )


def paper_cluster() -> ClusterConfig:
    """The evaluation cluster used by the benchmark harness.

    Ten executors (one per simulated machine pair in the paper) with the
    paper's memory-to-working-set ratio.
    """
    return ClusterConfig(
        num_executors=10,
        slots_per_executor=4,
        memory_store_bytes=8.5 * GiB,
        disk=DiskConfig(capacity_bytes=100 * GiB),
    )
