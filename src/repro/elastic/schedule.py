"""Scale schedules: declarative, virtual-time-stamped fleet plans.

A schedule is a tuple of :class:`ScaleSpec` records, the elastic twin of
``repro.faults.FaultSchedule``: plain frozen data declared inline in
tests, serialized into bench manifests, or generated from a seed
(:meth:`ScaleSchedule.seeded`) through the same ``SeedSequence``
spawn-key discipline the rest of the simulator uses — scale randomness
never perturbs workload (or fault) randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..sim.rng import make_rng

#: the three fleet-change event classes
SCALE_KINDS = ("scale_up", "scale_down", "preemption")

#: dedicated spawn-key namespace, disjoint from the fault stream
#: (``0xFA117``) and every per-partition workload generator
_SCHEDULE_STREAM = 0xE1A57


@dataclass(frozen=True)
class ScaleSpec:
    """One scheduled fleet change.

    ``at`` is virtual seconds; the fleet controller processes a spec at
    the first stage boundary at or after ``at`` (task-to-executor
    binding is per-stage, so fleet membership can only change between
    stages).  Per-kind fields:

    - ``scale_up``: activate ``count`` executors (reusing the
      lowest-id parked executors first, then provisioning fresh ones up
      to ``ElasticConfig.max_executors``);
    - ``scale_down``: gracefully drain ``count`` executors — every
      resident block migrates to its new home tier by tier — then park
      them; ``executor_id`` picks the first victim (mod the active
      fleet), subsequent victims follow in id order;
    - ``preemption``: a spot reclaim — the executor is wiped through
      the fault layer's crash path (cached blocks and shuffle outputs
      lost, lineage recovery on next access) and parked with no drain.
      Remote-tier blocks survive: the pool belongs to the cluster.

    Scale-downs and preemptions never shrink the fleet below
    ``ElasticConfig.min_executors``; excess count is skipped.
    """

    at: float
    kind: str
    count: int = 1
    executor_id: int | None = None
    pick: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SCALE_KINDS:
            raise ConfigError(f"unknown scale kind {self.kind!r}; known: {SCALE_KINDS}")
        if self.at < 0:
            raise ConfigError("scale event time must be >= 0")
        if self.count < 1:
            raise ConfigError("scale event count must be >= 1")
        if self.executor_id is not None and self.executor_id < 0:
            raise ConfigError("scale event executor_id must be >= 0")


@dataclass(frozen=True)
class ScaleSchedule:
    """An ordered plan of fleet changes for one application run."""

    specs: tuple[ScaleSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def in_order(self) -> list[ScaleSpec]:
        """Specs sorted by fire time (stable, so declaration order ties)."""
        return sorted(self.specs, key=lambda spec: spec.at)

    def clamped_to(self, num_executors: int) -> "ScaleSchedule":
        """Normalize executor ids into the initial fleet's range."""
        return ScaleSchedule(
            tuple(
                replace(spec, executor_id=spec.executor_id % num_executors)
                if spec.executor_id is not None
                else spec
                for spec in self.specs
            )
        )

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        horizon_seconds: float,
        num_executors: int,
        num_events: int = 4,
        kinds: tuple[str, ...] = SCALE_KINDS,
    ) -> "ScaleSchedule":
        """Draw a deterministic schedule of ``num_events`` over the horizon.

        The same ``(seed, horizon, executors, n, kinds)`` always yields
        the same schedule; fire times are uniform over ``[0, horizon)``
        and per-kind parameters are drawn from the same stream in a
        fixed order, so adding a kind never reshuffles earlier draws.
        """
        if horizon_seconds <= 0:
            raise ConfigError("horizon_seconds must be > 0")
        if num_executors <= 0:
            raise ConfigError("num_executors must be > 0")
        if num_events < 0:
            raise ConfigError("num_events must be >= 0")
        rng = make_rng(seed, _SCHEDULE_STREAM)
        times = sorted(float(t) for t in rng.uniform(0.0, horizon_seconds, size=num_events))
        specs: list[ScaleSpec] = []
        for at in times:
            kind = kinds[int(rng.integers(len(kinds)))]
            executor_id = int(rng.integers(num_executors))
            pick = int(rng.integers(1 << 30))
            count = 1 + int(rng.integers(2))
            if kind == "scale_up":
                specs.append(ScaleSpec(at, kind, count=count, pick=pick))
            else:
                specs.append(
                    ScaleSpec(at, kind, count=count, executor_id=executor_id, pick=pick)
                )
        return cls(tuple(specs))
