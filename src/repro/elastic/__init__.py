"""Elastic fleets and the remote-memory tier (the ``repro.elastic`` layer).

A :class:`ScaleSchedule` declares *when* the fleet changes on the virtual
clock — scale-ups, graceful scale-downs, spot preemptions — either
explicitly or generated from a seed through the simulator's spawn-key
discipline.  A :class:`FleetController` executes the schedule against a
live cluster at stage boundaries: scale-downs drain blocks to their new
homes (memory, the remote tier, or disk), preemptions reuse the fault
layer's crash-wipe + lineage-recovery path, and scale-ups wire fresh
executors into the directory, the decision layer, and the remote pool.

The remote-memory tier is a cluster-owned :class:`~repro.cluster.stores.
BlockStore` between executor memory and disk with its own throughput /
latency / serialization model, threaded through the cost model (Eq. 2/3)
and the eviction ladder; blocks in it survive preemption.

Everything is deterministic: same seed + same schedule ⇒ byte-identical
traces.  The whole layer sits behind the ``BlazeConfig.elastic`` kill
switch (default off) — a schedule passed to a context with the switch
down is inert, and every elastic counter stays zero.  See
``docs/elasticity.md``.
"""

from .controller import FleetController
from .schedule import SCALE_KINDS, ScaleSchedule, ScaleSpec

__all__ = [
    "SCALE_KINDS",
    "FleetController",
    "ScaleSchedule",
    "ScaleSpec",
]
