"""The fleet controller: executes a :class:`ScaleSchedule` against a cluster.

The driver polls the controller at every stage boundary — task-to-executor
binding is per-stage, so fleet membership can only change between stages —
and every scale event due by then is applied in fire-time order:

- *scale-up* activates executors (parked ones rejoin lowest id first,
  then fresh ones are provisioned up to ``ElasticConfig.max_executors``)
  and wires them into the residency directory, the remote pool, the
  decision layer's victim indexes, and the columnar backend;
- *scale-down* drains gracefully: the victim leaves the fleet first, then
  every resident block migrates to its new home executor — memory blocks
  into memory if they fit, else the remote tier, else disk; disk blocks
  onto the target's disk — with the copy I/O charged as background work;
- *preemption* is a spot reclaim: the executor is wiped through the fault
  layer's crash path (lineage recovery pays the bill later) and parked
  without a drain.  Remote-tier blocks survive — the pool belongs to the
  cluster, which is precisely the tier's disaggregation argument.

After every applied event the cache manager's ``on_fleet_changed`` hook
fires: the home-executor mapping moved, so residency-derived memoized
decision state must be rebuilt.  Nothing here advances the virtual clock;
migration time lands in ``Executor.busy_until`` like ILP migrations do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cluster.blocks import BlockLocation
from ..faults.injector import crash_wipe
from ..metrics.collector import TaskMetrics
from .schedule import ScaleSchedule, ScaleSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.cachemanager import CacheManager
    from ..cluster.cluster import Cluster
    from ..config import ElasticConfig


class FleetController:
    """Drives one scale schedule's events into a live cluster."""

    def __init__(
        self,
        schedule: ScaleSchedule,
        cluster: "Cluster",
        cache_manager: "CacheManager",
        config: "ElasticConfig",
    ) -> None:
        self.cluster = cluster
        self.manager = cache_manager
        self.config = config
        self.metrics = cluster.metrics
        self.tracer = cluster.tracer
        normalized = schedule.clamped_to(len(cluster.executors))
        #: not-yet-applied specs, in fire-time order (stable)
        self._pending: list[ScaleSpec] = normalized.in_order()
        #: the service's ColumnarBackend (assigned to freshly provisioned
        #: executors' block managers), or None when the plane is off
        self.columnar = None

    # ------------------------------------------------------------------
    def poll(self, now: float, job_id: int) -> None:
        """Apply every scale event due at or before ``now`` (stage hook)."""
        while self._pending and self._pending[0].at <= now:
            self._apply(self._pending.pop(0), now, job_id)

    def _apply(self, spec: ScaleSpec, now: float, job_id: int) -> None:
        self.metrics.scale_events += 1
        if spec.kind == "scale_up":
            changed = self._scale_up(spec)
        elif spec.kind == "scale_down":
            changed = self._scale_down(spec, now, job_id)
        else:
            changed = self._preempt(spec)
        if changed:
            self.manager.on_fleet_changed()

    # ------------------------------------------------------------------
    # Event kinds
    # ------------------------------------------------------------------
    def _scale_up(self, spec: ScaleSpec) -> bool:
        added = 0
        for _ in range(spec.count):
            if len(self.cluster.active_ids) >= self.config.max_executors:
                break
            executor = self.cluster.activate_executor()
            if self.columnar is not None and executor.bm.columnar is None:
                executor.bm.columnar = self.columnar
            self.manager.on_executor_added(executor)
            added += 1
        self.metrics.scale_ups += 1
        self.metrics.executors_added += added
        self._trace(spec, added=added)
        return added > 0

    def _scale_down(self, spec: ScaleSpec, now: float, job_id: int) -> bool:
        removed = migrated = 0
        tm = TaskMetrics()
        last_victim = None
        for _ in range(spec.count):
            active = self.cluster.active_ids
            if len(active) <= self.config.min_executors:
                break
            victim_id = active[spec.executor_id % len(active)]
            migrated += self._drain(victim_id, tm)
            last_victim = victim_id
            removed += 1
        if tm.total_seconds > 0 and last_victim is not None:
            # The departing node does the copy-out; its slots are gone, so
            # the charge only shapes the record — totals stay honest.
            self.cluster.executors[last_victim].charge_background(now, tm.total_seconds)
            self.metrics.record_task(job_id, last_victim, tm)
        self.metrics.scale_downs += 1
        self.metrics.executors_removed += removed
        self._trace(spec, removed=removed, migrated=migrated)
        return removed > 0

    def _drain(self, victim_id: int, tm: TaskMetrics) -> int:
        """Migrate every block off ``victim_id``; returns blocks moved.

        The victim leaves the fleet *before* the drain so targets are
        computed under the post-departure mapping — exactly where future
        lookups will go.  Shuffle map outputs are kept: a graceful drain
        copies them off before the node terminates (only preemption loses
        them).
        """
        executor = self.cluster.executors[victim_id]
        self.cluster.deactivate_executor(victim_id)
        moved = 0
        for block in executor.bm.cached_blocks():
            extracted, loc = executor.bm.extract(block.block_id)
            if (
                self.cluster.find_block(extracted.block_id) is not None
                or self.cluster.remote_block(extracted.block_id) is not None
            ):
                continue  # another copy is already reachable; drop this one
            target = self.cluster.executor_for(extracted.split)
            self.cluster.charge_remote_read(extracted, tm)  # the copy itself
            if loc is BlockLocation.MEMORY:
                if target.bm.memory.fits(extracted.size_bytes):
                    target.bm.insert_memory(extracted)
                elif not target.bm.insert_remote(extracted, tm):
                    target.bm.insert_disk(extracted, tm)
            else:
                target.bm.insert_disk(extracted, tm)
            moved += 1
            self.metrics.blocks_migrated += 1
            self.metrics.migrated_bytes += extracted.size_bytes
        return moved

    def _preempt(self, spec: ScaleSpec) -> bool:
        removed = lost = 0
        for _ in range(spec.count):
            active = self.cluster.active_ids
            if len(active) <= self.config.min_executors:
                break
            victim_id = active[spec.executor_id % len(active)]
            executor = self.cluster.executors[victim_id]
            # Wipe while still in the fleet: the shuffle-output ownership
            # mapping must see the victim as a member.
            blocks, _dropped = crash_wipe(self.cluster, self.manager, executor)
            self.cluster.deactivate_executor(victim_id)
            lost += len(blocks)
            removed += 1
        self.metrics.preemptions += 1
        self.metrics.executors_removed += removed
        self._trace(spec, removed=removed, blocks_lost=lost)
        return removed > 0

    # ------------------------------------------------------------------
    def _trace(self, spec: ScaleSpec, **extra) -> None:
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet.scale", "fleet",
                kind=spec.kind, at=spec.at, count=spec.count,
                fleet=len(self.cluster.active_ids), **extra,
            )

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"<FleetController pending={len(self._pending)} "
            f"fleet={len(self.cluster.active_ids)}>"
        )
