"""Run one (system, workload) cell end to end and collect every metric
the evaluation figures need.

A cell runs the dependency-extraction phase first when the system calls
for it (Blaze and its ablations), charges its virtual duration into the
application completion time (ACT), then executes the real workload and
snapshots the metric ledgers through the :meth:`BlazeContext.report`
façade.  Pass a :class:`~repro.tracing.InMemoryTracer` to capture a full
span/event trace of the cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import BlazeConfig, ClusterConfig, GiB, MiB, DiskConfig, paper_cluster
from ..core.profiler import run_dependency_extraction
from ..dataflow.context import BlazeContext
from ..elastic.schedule import ScaleSchedule
from ..faults.schedule import FaultSchedule
from ..systems.presets import make_system
from ..tracing import InMemoryTracer, NULL_TRACER, RunReport, Tracer
from ..workloads.base import Workload, WorkloadResult
from ..workloads.registry import make_workload


@dataclass
class RunResult:
    """Everything measured from one cell."""

    system: str
    workload: str
    scale: str
    seed: int
    #: end-to-end application completion time, profiling included
    act_seconds: float
    profiling_seconds: float
    #: accumulated task-time split (Fig. 4 / Fig. 10)
    disk_io_seconds: float
    compute_shuffle_seconds: float
    total_task_seconds: float
    recompute_seconds: float
    recompute_by_job: dict[int, float]
    #: cache events
    eviction_count: int
    evictions_to_disk: int
    unpersists: int
    evicted_bytes_by_executor: dict[int, float]
    #: cached-data-on-disk accounting (the 95 % reduction claim)
    disk_bytes_written_total: float
    disk_bytes_peak: float
    ilp_solves: int
    ilp_migrations: int
    workload_result: WorkloadResult | None = None
    #: the full report (carries the trace when the cell was traced)
    report: RunReport | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def evicted_bytes_total(self) -> float:
        return sum(self.evicted_bytes_by_executor.values())


def tiny_cluster() -> ClusterConfig:
    """Cluster matched to the registry's ``tiny`` workload byte models."""
    return ClusterConfig(
        num_executors=4,
        slots_per_executor=2,
        memory_store_bytes=48 * MiB,
        disk=DiskConfig(capacity_bytes=20 * GiB),
    )


def cluster_for_scale(scale: str) -> ClusterConfig:
    return tiny_cluster() if scale == "tiny" else paper_cluster()


def run_experiment(
    system: str,
    workload: "str | Workload",
    scale: str = "paper",
    seed: int = 0,
    cluster_config: ClusterConfig | None = None,
    blaze_config: BlazeConfig | None = None,
    tracer: Tracer | None = None,
    fault_schedule: "FaultSchedule | None" = None,
    scale_schedule: "ScaleSchedule | None" = None,
) -> RunResult:
    """Execute one evaluation cell and return its measurements.

    ``workload`` is a registry name or an already-parameterized
    :class:`~repro.workloads.base.Workload` instance (used by harnesses
    that vary parameters beyond the scale presets, e.g. the pressure
    configurations of ``scripts/bench.py``).  ``tracer=None`` defers to
    ``cluster_config.tracing_enabled`` (an
    :class:`~repro.tracing.InMemoryTracer` is created when set); pass an
    explicit tracer to capture the trace yourself.

    ``fault_schedule`` (with ``blaze_config.fault_injection`` on — the
    double opt-in) runs the cell under deterministic fault injection; the
    fault/recovery counters land in ``report.fault_counters``.
    ``scale_schedule`` (with ``blaze_config.elastic.enabled`` — the same
    double opt-in) runs the cell on an elastic fleet; the scale/migration
    counters land in ``report.elastic_counters``.
    """
    spec = make_system(system)
    wl = workload if isinstance(workload, Workload) else make_workload(workload, scale)
    config = cluster_config or cluster_for_scale(scale)
    bcfg = blaze_config or BlazeConfig()
    if tracer is None:
        tracer = InMemoryTracer() if config.tracing_enabled else NULL_TRACER

    profile = None
    profiling_seconds = 0.0
    if spec.needs_profile:
        profile = run_dependency_extraction(
            wl.profiling_run_fn(bcfg.profiling_sample_fraction), bcfg, seed=seed,
            tracer=tracer,
        )
        profiling_seconds = profile.virtual_seconds

    manager = spec.build(profile=profile, blaze_config=bcfg)
    ctx = BlazeContext(
        config, manager, seed=seed, tracer=tracer, blaze_config=bcfg,
        fault_schedule=fault_schedule, scale_schedule=scale_schedule,
    )
    wl_result = wl.run(ctx)
    ctx.note_profiling_seconds(profiling_seconds)
    report = ctx.report()
    ctx.stop()

    return RunResult(
        system=system,
        workload=workload if isinstance(workload, str) else wl.name,
        scale=scale,
        seed=seed,
        act_seconds=report.act_seconds + profiling_seconds,
        profiling_seconds=profiling_seconds,
        disk_io_seconds=report.disk_io_seconds,
        compute_shuffle_seconds=report.compute_shuffle_seconds,
        total_task_seconds=report.total_seconds,
        recompute_seconds=report.recompute_seconds,
        recompute_by_job=dict(report.recompute_seconds_by_job),
        eviction_count=report.eviction_count,
        evictions_to_disk=report.evictions_to_disk,
        unpersists=report.unpersists,
        evicted_bytes_by_executor=report.evicted_bytes_by_executor,
        disk_bytes_written_total=report.disk_bytes_written_total,
        disk_bytes_peak=report.disk_bytes_peak,
        ilp_solves=report.ilp_solves,
        ilp_migrations=report.ilp_migrations,
        workload_result=wl_result,
        report=report,
    )


#: process-wide memo so Fig. 9/10 (and the benches) share grid runs
_CACHE: dict[tuple, RunResult] = {}


def run_cached(system: str, workload: str, scale: str = "paper", seed: int = 0) -> RunResult:
    """Memoized :func:`run_experiment` (default configs only)."""
    key = (system, workload, scale, seed)
    if key not in _CACHE:
        _CACHE[key] = run_experiment(system, workload, scale=scale, seed=seed)
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()
