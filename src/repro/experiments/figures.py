"""Figure-by-figure reproduction of the paper's evaluation section.

Each ``figNN_*`` function runs (or reuses, via the process-wide memo) the
required experiment cells and returns the figure's data as plain rows,
ready for printing or assertions.  See DESIGN.md's per-experiment index
for the mapping and EXPERIMENTS.md for recorded paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..config import GiB
from ..systems.presets import system_label
from .runner import RunResult, run_cached

#: the six applications, in the paper's presentation order
APPS = ("pr", "cc", "lr", "kmeans", "gbt", "svdpp")
APP_LABELS = {
    "pr": "PR",
    "cc": "CC",
    "lr": "LR",
    "kmeans": "KMeans",
    "gbt": "GBT",
    "svdpp": "SVD++",
}

#: Fig. 9 / Fig. 10 system line-up
FIG9_SYSTEMS = (
    "spark_mem_only",
    "spark_mem_disk",
    "spark_alluxio",
    "spark_lrc",
    "spark_mrd",
    "blaze",
)

#: Fig. 11 ablation line-up
FIG11_SYSTEMS = ("spark_mem_disk", "autocache", "costaware", "blaze")

#: Fig. 12 memory-only line-up and apps
FIG12_SYSTEMS = ("spark_mem_only", "lrc_mem_only", "mrd_mem_only", "blaze_mem_only")
FIG12_APPS = ("pr", "cc", "lr", "svdpp")

#: Fig. 13 apps
FIG13_APPS = ("pr", "cc", "lr", "svdpp")


@dataclass
class FigureData:
    """One reproduced figure: column headers plus data rows."""

    figure: str
    headers: Sequence[str]
    rows: list[list] = field(default_factory=list)
    notes: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
def fig3_eviction_skew(scale: str = "paper", seed: int = 0) -> FigureData:
    """Fig. 3: evicted data (GB) per executor, PR on MEM+DISK Spark."""
    r = run_cached("spark_mem_disk", "pr", scale, seed)
    data = FigureData(
        figure="fig3",
        headers=["executor", "evicted_gb"],
    )
    for executor_id, evicted in sorted(r.evicted_bytes_by_executor.items()):
        data.rows.append([executor_id + 1, evicted / GiB])
    values = [row[1] for row in data.rows]
    if values:
        data.notes["max_over_min"] = max(values) / max(min(values), 1e-9)
    return data


def fig4_disk_io_breakdown(scale: str = "paper", seed: int = 0) -> FigureData:
    """Fig. 4: accumulated task time split, all apps on MEM+DISK Spark."""
    data = FigureData(
        figure="fig4",
        headers=["app", "disk_io_s", "compute_shuffle_s", "disk_share_pct"],
    )
    for app in APPS:
        r = run_cached("spark_mem_disk", app, scale, seed)
        share = 100.0 * r.disk_io_seconds / max(r.total_task_seconds, 1e-9)
        data.rows.append(
            [APP_LABELS[app], r.disk_io_seconds, r.compute_shuffle_seconds, share]
        )
    return data


def fig5_recompute_growth(scale: str = "paper", seed: int = 0) -> FigureData:
    """Fig. 5: total recomputation time per iteration, PR on MEM_ONLY Spark.

    Job 0 is the pre-processing job; jobs 1..N map to iterations 1..N.
    """
    r = run_cached("spark_mem_only", "pr", scale, seed)
    data = FigureData(figure="fig5", headers=["iteration", "recompute_s"])
    for job_id, seconds in sorted(r.recompute_by_job.items()):
        if job_id == 0:
            continue  # pre-processing
        data.rows.append([job_id, seconds])
    return data


def fig9_end_to_end(scale: str = "paper", seed: int = 0) -> FigureData:
    """Fig. 9: application completion time, 6 systems x 6 apps."""
    data = FigureData(
        figure="fig9",
        headers=["app"] + [system_label(s) for s in FIG9_SYSTEMS],
    )
    speedups = {}
    for app in APPS:
        acts = [run_cached(s, app, scale, seed).act_seconds for s in FIG9_SYSTEMS]
        data.rows.append([APP_LABELS[app]] + acts)
        blaze = acts[FIG9_SYSTEMS.index("blaze")]
        speedups[app] = {
            "vs_mem_only": acts[FIG9_SYSTEMS.index("spark_mem_only")] / blaze,
            "vs_mem_disk": acts[FIG9_SYSTEMS.index("spark_mem_disk")] / blaze,
        }
    data.notes["speedups"] = speedups
    return data


def fig10_cost_breakdown(scale: str = "paper", seed: int = 0) -> FigureData:
    """Fig. 10: accumulated task-time breakdown for the Fig. 9 grid,
    plus the cached-bytes-on-disk reduction of Blaze vs MEM+DISK Spark."""
    data = FigureData(
        figure="fig10",
        headers=["app", "system", "disk_io_s", "compute_shuffle_s", "disk_written_gb"],
    )
    reductions = {}
    for app in APPS:
        md_written = run_cached("spark_mem_disk", app, scale, seed).disk_bytes_written_total
        for system in FIG9_SYSTEMS:
            r = run_cached(system, app, scale, seed)
            data.rows.append(
                [
                    APP_LABELS[app],
                    system_label(system),
                    r.disk_io_seconds,
                    r.compute_shuffle_seconds,
                    r.disk_bytes_written_total / GiB,
                ]
            )
        blaze_written = run_cached("blaze", app, scale, seed).disk_bytes_written_total
        reductions[app] = 100.0 * (1.0 - blaze_written / max(md_written, 1e-9))
    data.notes["disk_reduction_pct"] = reductions
    return data


def fig11_ablation(scale: str = "paper", seed: int = 0) -> FigureData:
    """Fig. 11: MEM+DISK Spark -> +AutoCache -> +CostAware -> Blaze."""
    data = FigureData(
        figure="fig11",
        headers=["app"] + [system_label(s) for s in FIG11_SYSTEMS],
    )
    for app in APPS:
        acts = [run_cached(s, app, scale, seed).act_seconds for s in FIG11_SYSTEMS]
        data.rows.append([APP_LABELS[app]] + acts)
    return data


def fig12_memonly_evictions(scale: str = "paper", seed: int = 0) -> FigureData:
    """Fig. 12: #evictions and total recomputation time, memory only."""
    data = FigureData(
        figure="fig12",
        headers=["app", "system", "evictions", "recompute_s"],
    )
    for app in FIG12_APPS:
        for system in FIG12_SYSTEMS:
            r = run_cached(system, app, scale, seed)
            data.rows.append(
                [APP_LABELS[app], system_label(system), r.eviction_count, r.recompute_seconds]
            )
    return data


def fig13_profiling_benefit(scale: str = "paper", seed: int = 0) -> FigureData:
    """Fig. 13: ACT of Blaze with vs without dependency profiling,
    normalized to the without-profiling run (paper: 0.61-1.00)."""
    data = FigureData(
        figure="fig13",
        headers=["app", "with_profiling_s", "without_profiling_s", "normalized"],
    )
    for app in FIG13_APPS:
        with_p = run_cached("blaze", app, scale, seed).act_seconds
        without_p = run_cached("blaze_no_profile", app, scale, seed).act_seconds
        data.rows.append([APP_LABELS[app], with_p, without_p, with_p / without_p])
    return data
