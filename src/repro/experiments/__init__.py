"""Experiment harness: run (system x workload) cells and rebuild figures."""

from .runner import RunResult, run_cached, run_experiment
from . import figures

__all__ = ["RunResult", "run_experiment", "run_cached", "figures"]
