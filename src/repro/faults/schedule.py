"""Fault schedules: declarative, virtual-time-stamped failure plans.

A schedule is a tuple of :class:`FaultSpec` records.  Specs are plain
frozen data so schedules can be declared inline in tests, serialized into
bench manifests, or generated from a seed (:meth:`FaultSchedule.seeded`)
through the same ``SeedSequence`` spawn-key discipline the rest of the
simulator uses — fault randomness never perturbs workload randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..sim.rng import make_rng

#: the four injectable failure classes
FAULT_KINDS = ("executor_crash", "block_loss", "straggler", "fetch_failure")

#: dedicated spawn-key namespace so seeded schedules draw from a stream
#: disjoint from every per-partition workload generator
_SCHEDULE_STREAM = 0xFA117


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``at`` is virtual seconds; the injector processes a spec at the first
    task start at or after ``at`` (crashes falling strictly inside a
    running attempt's window fail that attempt post-hoc).  Fields beyond
    ``at``/``kind`` are per-kind:

    - ``executor_crash``: ``executor_id`` — wipes both storage tiers and
      every shuffle map output homed on the executor;
    - ``block_loss``: either an explicit ``(rdd_id, split)`` target or a
      ``pick`` draw resolved against the blocks resident at fire time;
    - ``straggler``: ``executor_id`` (optionally one ``slot``) runs tasks
      ``factor``× slower for ``window_seconds`` after ``at``;
    - ``fetch_failure``: arms a one-shot failure of the next shuffle
      fetch; ``pick`` selects which map output is reported lost.
    """

    at: float
    kind: str
    executor_id: int | None = None
    rdd_id: int | None = None
    split: int | None = None
    pick: int = 0
    slot: int | None = None
    factor: float = 2.0
    window_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.at < 0:
            raise ConfigError("fault time must be >= 0")
        if self.kind in ("executor_crash", "straggler") and self.executor_id is None:
            raise ConfigError(f"{self.kind} needs an executor_id")
        if self.kind == "straggler":
            if self.factor < 1.0:
                raise ConfigError("straggler factor must be >= 1")
            if self.window_seconds <= 0:
                raise ConfigError("straggler window_seconds must be > 0")
        if self.kind == "block_loss" and (self.rdd_id is None) != (self.split is None):
            raise ConfigError("block_loss needs both rdd_id and split, or neither")


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered plan of faults for one application run."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def in_order(self) -> list[FaultSpec]:
        """Specs sorted by fire time (stable, so declaration order ties)."""
        return sorted(self.specs, key=lambda spec: spec.at)

    def clamped_to(self, num_executors: int) -> "FaultSchedule":
        """Normalize executor ids into the cluster's range."""
        return FaultSchedule(
            tuple(
                replace(spec, executor_id=spec.executor_id % num_executors)
                if spec.executor_id is not None
                else spec
                for spec in self.specs
            )
        )

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        horizon_seconds: float,
        num_executors: int,
        num_faults: int = 4,
        kinds: tuple[str, ...] = FAULT_KINDS,
    ) -> "FaultSchedule":
        """Draw a deterministic schedule of ``num_faults`` over the horizon.

        The same ``(seed, horizon, executors, n, kinds)`` always yields the
        same schedule; fire times are uniform over ``[0, horizon)`` and
        per-kind parameters are drawn from the same stream in a fixed
        order, so adding a kind never reshuffles earlier draws.
        """
        if horizon_seconds <= 0:
            raise ConfigError("horizon_seconds must be > 0")
        if num_executors <= 0:
            raise ConfigError("num_executors must be > 0")
        if num_faults < 0:
            raise ConfigError("num_faults must be >= 0")
        rng = make_rng(seed, _SCHEDULE_STREAM)
        times = sorted(float(t) for t in rng.uniform(0.0, horizon_seconds, size=num_faults))
        specs: list[FaultSpec] = []
        for at in times:
            kind = kinds[int(rng.integers(len(kinds)))]
            executor_id = int(rng.integers(num_executors))
            pick = int(rng.integers(1 << 30))
            if kind == "executor_crash":
                specs.append(FaultSpec(at, kind, executor_id=executor_id))
            elif kind == "block_loss":
                specs.append(FaultSpec(at, kind, pick=pick))
            elif kind == "straggler":
                factor = 1.5 + 2.5 * float(rng.random())
                window = max(horizon_seconds * 0.2 * float(rng.random()), 1e-3)
                specs.append(
                    FaultSpec(
                        at, kind, executor_id=executor_id,
                        factor=factor, window_seconds=window,
                    )
                )
            else:  # fetch_failure
                specs.append(FaultSpec(at, kind, pick=pick))
        return cls(tuple(specs))
