"""The fault injector: executes a :class:`FaultSchedule` against a cluster.

The scheduler calls :meth:`FaultInjector.poll` at every task start, which
fires every fault due by then; crashes landing strictly inside a running
attempt's window are consumed post-hoc by :meth:`check_inflight_crash`
(the sim runs tasks atomically at their start time, so "during" can only
be observed after the attempt's charges are known).  All state mutations
go through the engine's own loss primitives (``BlockManager.purge_lost``,
``ShuffleManager.drop_outputs_for_executor``) so residency listeners,
victim indexes, and cost memos stay consistent — the invariant the
crash-consistency property tests pin down.

Nothing here advances the virtual clock: retry backoff and wasted attempt
time are returned to the scheduler as extra slot-occupancy seconds, which
keeps the slot heap's non-decreasing pop order intact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import FaultError
from ..tracing.tracer import executor_pid
from .schedule import FaultSchedule, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.cachemanager import CacheManager
    from ..cluster.cluster import Cluster
    from ..cluster.executor import Executor
    from ..dataflow.dependencies import ShuffleDependency


class InjectedTaskFailure(Exception):
    """Control-flow signal: the current task attempt failed by injection.

    Caught by the driver's reattempt loop, never by user code.
    ``wasted_seconds`` is the virtual time the doomed attempt occupied its
    slot before failing (added to the slot's busy time on retry).
    """

    def __init__(self, kind: str, wasted_seconds: float = 0.0, detail: str = "") -> None:
        super().__init__(detail or kind)
        self.kind = kind
        self.wasted_seconds = wasted_seconds


def crash_wipe(
    cluster: "Cluster", cache_manager: "CacheManager", executor: "Executor"
) -> tuple[list, list]:
    """Wipe one executor: both storage tiers plus its shuffle map outputs.

    Everything goes through the engine's own loss primitives so residency
    listeners, victim indexes, and cost memos stay consistent.  Shared by
    crash faults and the elastic controller's spot preemption (which is a
    crash by another name — only the counters differ).  Returns the lost
    blocks and the dropped map outputs.
    """
    lost = executor.bm.purge_all_lost()
    for block in lost:
        cache_manager.on_block_lost(executor, block)
    dropped = cluster.shuffle.drop_outputs_for_executor(
        executor.executor_id, cluster.executor_for
    )
    return lost, dropped


class FaultInjector:
    """Drives one schedule's faults into a live cluster, deterministically."""

    def __init__(
        self,
        schedule: FaultSchedule,
        cluster: "Cluster",
        cache_manager: "CacheManager",
        *,
        max_task_retries: int = 4,
        retry_backoff_seconds: float = 0.25,
    ) -> None:
        self.cluster = cluster
        self.cache_manager = cache_manager
        self.metrics = cluster.metrics
        self.tracer = cluster.tracer
        self.max_task_retries = int(max_task_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        normalized = schedule.clamped_to(len(cluster.executors))
        #: not-yet-fired specs, in fire-time order (stable)
        self._pending: list[FaultSpec] = normalized.in_order()
        #: one-shot fetch failures armed by poll(), consumed at the next fetch
        self._armed_fetch: list[FaultSpec] = []
        #: active straggler windows
        self._stragglers: list[FaultSpec] = []

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def poll(self, now: float) -> None:
        """Fire every fault due at or before ``now`` (task-start hook)."""
        while self._pending and self._pending[0].at <= now:
            self._fire(self._pending.pop(0))

    def _fire(self, spec: FaultSpec) -> None:
        self.metrics.faults_injected += 1
        if spec.kind == "executor_crash":
            self._crash(spec)
        elif spec.kind == "block_loss":
            self._lose_block(spec)
        elif spec.kind == "straggler":
            self._stragglers.append(spec)
            if self.tracer.enabled:
                self.tracer.instant(
                    "fault.injected", "fault", pid=executor_pid(spec.executor_id),
                    kind=spec.kind, at=spec.at, factor=spec.factor,
                    window_s=spec.window_seconds, slot=spec.slot,
                )
        else:  # fetch_failure: armed now, bites at the next shuffle fetch
            self._armed_fetch.append(spec)
            if self.tracer.enabled:
                self.tracer.instant(
                    "fault.injected", "fault",
                    kind=spec.kind, at=spec.at, armed=True,
                )

    def _crash(self, spec: FaultSpec) -> None:
        """Wipe an executor: both storage tiers plus its shuffle map outputs."""
        executor = self.cluster.executors[spec.executor_id]
        lost, dropped = crash_wipe(self.cluster, self.cache_manager, executor)
        self.metrics.executor_crashes += 1
        self.metrics.shuffle_outputs_lost += len(dropped)
        if self.tracer.enabled:
            self.tracer.instant(
                "fault.injected", "fault", pid=executor_pid(executor.executor_id),
                kind=spec.kind, at=spec.at,
                blocks_lost=len(lost), map_outputs_lost=len(dropped),
            )

    def _lose_block(self, spec: FaultSpec) -> None:
        """Drop one cached block (explicit target, or a pick over residents)."""
        target: tuple["Executor", object] | None = None
        if spec.rdd_id is not None:
            found = self.cluster.find_block((spec.rdd_id, spec.split))
            if found is not None:
                owner, _loc = found
                target = (owner, owner.bm.get((spec.rdd_id, spec.split)))
        else:
            resident = [
                (executor, block)
                for executor in self.cluster.executors
                for block in executor.bm.cached_blocks()
            ]
            if resident:
                target = resident[spec.pick % len(resident)]
        if target is None:
            if self.tracer.enabled:
                self.tracer.instant(
                    "fault.injected", "fault", kind=spec.kind, at=spec.at, hit=False,
                )
            return
        executor, block = target
        executor.bm.purge_lost(block.block_id)
        self.cache_manager.on_block_lost(executor, block)
        if self.tracer.enabled:
            self.tracer.instant(
                "fault.injected", "fault", pid=executor_pid(executor.executor_id),
                kind=spec.kind, at=spec.at, hit=True,
                rdd=block.rdd_id, split=block.split,
            )

    # ------------------------------------------------------------------
    # Driver hooks
    # ------------------------------------------------------------------
    def check_inflight_crash(self, executor: "Executor", start: float, duration: float) -> None:
        """Fail the finishing attempt if a crash lands inside its window.

        A crash at exactly ``start`` was already consumed by ``poll``; the
        in-flight window is ``(start, start + duration]`` on the attempt's
        own executor.  Consumes the spec, applies the wipe, and raises.
        """
        end = start + duration
        for i, spec in enumerate(self._pending):
            if spec.at > end:
                break
            if (
                spec.kind == "executor_crash"
                and spec.executor_id == executor.executor_id
                and spec.at > start
            ):
                del self._pending[i]
                self.metrics.faults_injected += 1
                self._crash(spec)
                raise InjectedTaskFailure(
                    "executor_crash",
                    wasted_seconds=spec.at - start,
                    detail=f"executor {executor.executor_id} crashed mid-task",
                )

    def on_fetch(self, dep: "ShuffleDependency") -> None:
        """One-shot fetch failure: report a map output lost and fail the task.

        The dropped output makes the shuffle incomplete, so the reattempt
        goes through the driver's map-stage resubmission path — exactly
        Spark's FetchFailed → stage re-execution flow.
        """
        if not self._armed_fetch:
            return
        spec = self._armed_fetch.pop(0)
        n_maps = max(dep.parent.num_partitions, 1)
        map_split = spec.pick % n_maps
        dropped = self.cluster.shuffle.drop_map_output(dep.shuffle_id, map_split)
        self.metrics.fetch_failures += 1
        if dropped:
            self.metrics.shuffle_outputs_lost += 1
        if self.tracer.enabled:
            # Keyed by the map-side dataset, not the raw shuffle id: shuffle
            # ids come from a process-global counter and would break
            # byte-identical traces across runs in one process.
            self.tracer.instant(
                "fault.injected", "fault", kind="fetch_failure", at=spec.at,
                map_rdd=dep.parent.rdd_id, map_split=map_split, dropped=dropped,
            )
        raise InjectedTaskFailure(
            "fetch_failure",
            detail=f"fetch of shuffle {dep.shuffle_id} lost map output {map_split}",
        )

    def on_task_failure(
        self,
        executor: "Executor",
        stage_seq: int,
        split: int,
        attempt: int,
        failure: InjectedTaskFailure,
    ) -> float:
        """Account one failed attempt; returns its slot-time overhead.

        The overhead (wasted attempt time + linear virtual-time backoff)
        extends the slot's busy window without advancing the clock.
        Raises :class:`FaultError` once the bounded retries are exhausted.
        """
        if attempt > self.max_task_retries:
            raise FaultError(
                f"task {split} of stage {stage_seq} failed "
                f"{attempt} times (last: {failure.kind})"
            )
        backoff = self.retry_backoff_seconds * attempt
        self.metrics.task_reattempts += 1
        self.metrics.fault_wasted_seconds += failure.wasted_seconds
        self.metrics.fault_backoff_seconds += backoff
        if self.tracer.enabled:
            self.tracer.instant(
                "task.reattempt", "fault", pid=executor_pid(executor.executor_id),
                stage=stage_seq, split=split, attempt=attempt,
                reason=failure.kind, wasted_s=failure.wasted_seconds,
                backoff_s=backoff,
            )
        return failure.wasted_seconds + backoff

    def straggler_extra(
        self, executor_id: int, slot: int, start: float, duration: float
    ) -> float:
        """Extra slot seconds from straggler windows active at ``start``."""
        extra = 0.0
        for spec in self._stragglers:
            if spec.executor_id != executor_id:
                continue
            if spec.slot is not None and spec.slot != slot:
                continue
            if spec.at <= start < spec.at + spec.window_seconds:
                extra += duration * (spec.factor - 1.0)
        if extra > 0.0:
            self.metrics.straggler_tasks_slowed += 1
            self.metrics.fault_straggler_seconds += extra
        return extra

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector pending={len(self._pending)} "
            f"armed_fetch={len(self._armed_fetch)} stragglers={len(self._stragglers)}>"
        )
