"""Deterministic fault injection and recovery (the ``repro.faults`` layer).

A :class:`FaultSchedule` declares *what* goes wrong and *when* on the
virtual clock — executor crashes, single-block loss, straggler slowdowns,
shuffle-fetch failures — either explicitly or generated from a seed via
``repro.sim.rng``.  A :class:`FaultInjector` executes the schedule against
a live cluster: the scheduler polls it at every task start, the driver
retries failed attempts with bounded virtual-time backoff, and lost state
recovers through the engine's lineage paths (disk read-back, recursive
recomputation, shuffle map-stage re-execution).

Everything is deterministic: same seed + same schedule ⇒ byte-identical
traces.  The whole layer sits behind the ``BlazeConfig.fault_injection``
kill switch (default off) — a schedule passed to a context with the switch
down is inert.  See ``docs/fault_injection.md``.
"""

from .injector import FaultInjector, InjectedTaskFailure
from .schedule import FAULT_KINDS, FaultSchedule, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "InjectedTaskFailure",
]
