"""Lineage-graph utilities shared by the driver, policies, and Blaze.

The lineage of an RDD is the DAG of everything it transitively depends on.
These helpers provide deterministic traversals (insertion-ordered, so two
runs walk the graph identically).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rdd import RDD


def ancestors(rdd: "RDD", include_self: bool = False) -> list["RDD"]:
    """All transitive parents of ``rdd`` in deterministic DFS order."""
    seen: dict[int, RDD] = {}
    stack = [rdd]
    while stack:
        node = stack.pop()
        for parent in node.parents:
            if parent.rdd_id not in seen:
                seen[parent.rdd_id] = parent
                stack.append(parent)
    result = list(seen.values())
    if include_self and rdd.rdd_id not in seen:
        result.append(rdd)
    return result


def topological_order(rdd: "RDD") -> list["RDD"]:
    """Parents-before-children ordering of ``rdd``'s lineage (incl. itself)."""
    order: list[RDD] = []
    visited: set[int] = set()

    def visit(node: "RDD") -> None:
        if node.rdd_id in visited:
            return
        visited.add(node.rdd_id)
        for parent in node.parents:
            visit(parent)
        order.append(node)

    visit(rdd)
    return order


def narrow_closure(
    rdd: "RDD",
    stop_at_cached: bool = False,
    materialized: set[int] | None = None,
) -> list["RDD"]:
    """RDDs reachable from ``rdd`` through narrow dependencies only.

    This is the set of datasets a single stage's tasks may touch: traversal
    stops below shuffle dependencies (those belong to parent stages) but
    includes the shuffle RDD itself.

    ``stop_at_cached`` additionally stops below annotation-cached datasets
    (they are included but their parents are not traversed): a task that
    hits the cache never touches the ancestors, so reference analyses that
    expand through cached boundaries wildly over-count old iterations on
    narrow-chained workloads.  When ``materialized`` is given, a cached
    dataset that has *not yet been produced* is still expanded (its first
    touch must compute through its parents); this includes the root — a
    stage whose terminal dataset is cached and already materialized only
    re-reads it.  Without ``materialized`` the root is always expanded.
    """
    seen: set[int] = set()
    out: list[RDD] = []

    def visit(node: "RDD", is_root: bool) -> None:
        if node.rdd_id in seen:
            return
        seen.add(node.rdd_id)
        out.append(node)
        if stop_at_cached and node.is_annotated_cached:
            if materialized is not None:
                if node.rdd_id in materialized:
                    return
            elif not is_root:
                return
        for dep in node.narrow_deps:
            visit(dep.parent, False)

    visit(rdd, True)
    return out


def walk_edges(rdd: "RDD") -> Iterator[tuple["RDD", "RDD"]]:
    """Yield (parent, child) edges over the whole lineage of ``rdd``."""
    for node in topological_order(rdd):
        for parent in node.parents:
            yield parent, node


def count_direct_references(
    roots: list["RDD"],
    is_interesting: Callable[["RDD"], bool] | None = None,
) -> dict[int, int]:
    """Number of direct children each RDD has across the given lineages.

    This is the static "reference count" used by LRC: how many distinct
    child edges point at each dataset within the submitted jobs' DAGs.
    """
    counts: dict[int, int] = {}
    seen_edges: set[tuple[int, int]] = set()
    for root in roots:
        for parent, child in walk_edges(root):
            if is_interesting is not None and not is_interesting(parent):
                continue
            edge = (parent.rdd_id, child.rdd_id)
            if edge in seen_edges:
                continue
            seen_edges.add(edge)
            counts[parent.rdd_id] = counts.get(parent.rdd_id, 0) + 1
    return counts
