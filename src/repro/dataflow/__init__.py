"""Spark-like dataflow substrate: lazy RDDs, dependencies, stages, jobs.

This package provides the abstractions the Blaze decision layers act on:

- :class:`~repro.dataflow.rdd.RDD` — lazy, partitioned, immutable datasets
  with narrow (map-like) and shuffle (wide) dependencies;
- :class:`~repro.dataflow.dag.Stage`/:class:`~repro.dataflow.dag.Job` —
  execution units with boundaries at shuffle operators;
- :class:`~repro.dataflow.context.BlazeContext` — the driver-side entry
  point that builds RDDs and submits jobs to the simulated cluster.
"""

from .context import BlazeContext
from .dependencies import NarrowDependency, OneToOneDependency, RangeDependency, ShuffleDependency
from .operators import OpCost, SizeModel
from .partitioner import HashPartitioner, Partitioner
from .rdd import RDD

__all__ = [
    "BlazeContext",
    "RDD",
    "OpCost",
    "SizeModel",
    "Partitioner",
    "HashPartitioner",
    "NarrowDependency",
    "OneToOneDependency",
    "RangeDependency",
    "ShuffleDependency",
]
