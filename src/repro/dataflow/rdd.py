"""Lazy, partitioned, immutable datasets (the simulator's RDDs).

An :class:`RDD` describes *how* to compute each of its partitions from its
parents.  Nothing is computed at construction time; actions (``collect``,
``count``, ``reduce``...) submit a job to the driver, which materializes
partitions through the cluster's cache-aware task execution path.

The split between description and execution matters for the reproduction:
the cluster layer resolves every input through the block managers (memory
hit, disk hit, or recursive recomputation) and charges virtual time per the
operator's :class:`~repro.dataflow.operators.OpCost`, which is exactly the
surface Blaze's cost model observes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..errors import DataflowError
from .dependencies import (
    CoalesceDependency,
    Dependency,
    NarrowDependency,
    OneToOneDependency,
    RangeDependency,
    ShuffleDependency,
)
from .operators import MAP_LIKE, SHUFFLE_LIKE, OpCost, SizeModel
from .partitioner import HashPartitioner, Partitioner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .context import BlazeContext


class RDD:
    """Base dataset abstraction.

    Subclasses implement :meth:`compute` as a *pure* function of the already
    materialized inputs; input resolution (and all cost accounting) is the
    cluster layer's job.
    """

    def __init__(
        self,
        ctx: "BlazeContext",
        deps: list[Dependency],
        num_partitions: int,
        name: str | None = None,
        op_cost: OpCost | None = None,
        size_model: SizeModel | None = None,
        partitioner: Partitioner | None = None,
        sig_extra: tuple = (),
    ) -> None:
        if num_partitions <= 0:
            raise DataflowError("an RDD needs at least one partition")
        self.ctx = ctx
        self.deps = deps
        self.num_partitions = num_partitions
        self.op_cost = op_cost or MAP_LIKE
        self.size_model = size_model or SizeModel()
        #: optional data -> weight mapping for the size model; by default a
        #: partition's modeled bytes scale with its element count, but
        #: edge-holding datasets weigh by total adjacency length so the
        #: power-law degree skew shows up as per-partition size skew.
        self.size_weigher = None
        self.partitioner = partitioner
        self.is_annotated_cached = False
        # ``sig_extra`` carries the subclass-specific identity ingredients
        # (user functions, payloads, flags) that the job service fingerprints
        # for cross-application lineage dedup; the legacy single-tenant path
        # ignores it and assigns sequential ids.
        self.rdd_id = ctx.register_rdd(self, (name, *sig_extra))
        self.name = name or f"{type(self).__name__}#{self.rdd_id}"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def narrow_deps(self) -> list[NarrowDependency]:
        return [d for d in self.deps if isinstance(d, NarrowDependency)]

    @property
    def shuffle_deps(self) -> list[ShuffleDependency]:
        return [d for d in self.deps if isinstance(d, ShuffleDependency)]

    @property
    def parents(self) -> list["RDD"]:
        return [d.parent for d in self.deps]

    def narrow_inputs(self, split: int) -> list[tuple["RDD", int]]:
        """(parent, parent_split) pairs needed to compute ``split``."""
        pairs: list[tuple[RDD, int]] = []
        for dep in self.narrow_deps:
            pairs.extend((dep.parent, ps) for ps in dep.parent_splits(split))
        return pairs

    # ------------------------------------------------------------------
    # Computation (implemented by subclasses)
    # ------------------------------------------------------------------
    def compute(
        self,
        split: int,
        narrow_data: list[list],
        shuffle_data: list[list],
    ) -> list:
        """Produce the elements of ``split`` from materialized inputs.

        ``narrow_data`` aligns with :meth:`narrow_inputs`; ``shuffle_data``
        aligns with :attr:`shuffle_deps` (each entry is the merged reduce
        input ``[(key, value_or_values), ...]`` for this split).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Model / annotation helpers
    # ------------------------------------------------------------------
    def with_model(
        self,
        op_cost: OpCost | None = None,
        size_model: SizeModel | None = None,
    ) -> "RDD":
        """Override the cost and/or size model in place (builder style)."""
        if op_cost is not None:
            self.op_cost = op_cost
        if size_model is not None:
            self.size_model = size_model
        return self

    def named(self, name: str) -> "RDD":
        """Set a human-readable name (builder style)."""
        self.name = name
        return self

    def with_weigher(self, weigher) -> "RDD":
        """Set ``weigher(elements) -> weight`` for size modeling."""
        self.size_weigher = weigher
        return self

    def size_weight(self, data) -> float:
        """The size-model weight of a materialized partition.

        Custom weighers always win.  Under a measured size model the
        weight is the stored representation's real byte count when it
        exposes one (``ColumnarBatch.nbytes``); list partitions fall back
        to the per-element estimate so a measured model degrades gracefully
        on non-analyzable data.
        """
        if self.size_weigher is not None:
            return float(self.size_weigher(data))
        if self.size_model.measured:
            nbytes = getattr(data, "nbytes", None)
            if nbytes is not None:
                return float(nbytes)
            return self.size_model.bytes_per_element * len(data)
        return float(len(data))

    def cache(self) -> "RDD":
        """Annotate this dataset to be cached (Spark ``cache()`` semantics).

        Under Blaze the annotation is ignored: caching is automatic.
        """
        self.is_annotated_cached = True
        return self

    persist = cache

    def unpersist(self) -> "RDD":
        """Drop the annotation and discard any cached partitions."""
        self.is_annotated_cached = False
        self.ctx.unpersist_rdd(self)
        return self

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def map_partitions(
        self,
        fn: Callable[[int, list], Iterable],
        op_cost: OpCost | None = None,
        size_model: SizeModel | None = None,
        preserves_partitioning: bool = False,
        name: str | None = None,
        elem_op: "tuple[str, Callable] | None" = None,
        streamable: bool = False,
    ) -> "RDD":
        """Apply ``fn(split_index, elements)`` to each partition.

        ``elem_op`` describes the body as an element-wise operation
        (``("map"|"filter"|"flat_map", fn)``) so the fused data plane can
        pipeline it; ``streamable=True`` declares that ``fn`` consumes its
        input in a single forward pass (and so accepts any iterable).
        Both are optional metadata — execution semantics are unchanged.
        """
        return MapPartitionsRDD(
            self.ctx,
            self,
            fn,
            op_cost=op_cost,
            size_model=size_model,
            preserves_partitioning=preserves_partitioning,
            name=name,
            elem_op=elem_op,
            streamable=streamable,
        )

    def map(self, fn: Callable[[Any], Any], **kwargs) -> "RDD":
        """Element-wise transform."""
        return self.map_partitions(
            lambda _s, part: [fn(x) for x in part], elem_op=("map", fn), **kwargs
        )

    def filter(self, pred: Callable[[Any], bool], **kwargs) -> "RDD":
        """Keep elements satisfying ``pred``."""
        kwargs.setdefault("preserves_partitioning", True)
        return self.map_partitions(
            lambda _s, part: [x for x in part if pred(x)],
            elem_op=("filter", pred),
            **kwargs,
        )

    def flat_map(self, fn: Callable[[Any], Iterable], **kwargs) -> "RDD":
        """Element-wise transform producing zero or more outputs each."""
        return self.map_partitions(
            lambda _s, part: [y for x in part for y in fn(x)],
            elem_op=("flat_map", fn),
            **kwargs,
        )

    def map_values(self, fn: Callable[[Any], Any], **kwargs) -> "RDD":
        """Transform the value of each (key, value) pair, keeping keys."""
        kwargs.setdefault("preserves_partitioning", True)

        def mv(kv, fn=fn):
            k, v = kv
            return (k, fn(v))

        return self.map_partitions(
            lambda _s, part: [(k, fn(v)) for k, v in part],
            elem_op=("map", mv),
            **kwargs,
        )

    def key_by(self, fn: Callable[[Any], Any], **kwargs) -> "RDD":
        """Turn elements into (fn(x), x) pairs."""
        return self.map_partitions(
            lambda _s, part: [(fn(x), x) for x in part],
            elem_op=("map", lambda x, fn=fn: (fn(x), x)),
            **kwargs,
        )

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two datasets (narrow; partitions are juxtaposed)."""
        return UnionRDD(self.ctx, [self, other])

    def coalesce(self, num_partitions: int, **kwargs) -> "RDD":
        """Shrink to ``num_partitions`` by packing contiguous partitions
        together (narrow, no shuffle — Spark's ``coalesce``)."""
        if num_partitions == self.num_partitions:
            return self
        return CoalesceRDD(self.ctx, self, num_partitions, **kwargs)

    def zip_partitions(
        self,
        other: "RDD",
        fn: Callable[[int, list, list], Iterable],
        **kwargs,
    ) -> "RDD":
        """Combine co-indexed partitions of two same-width datasets."""
        return ZipPartitionsRDD(self.ctx, [self, other], fn, **kwargs)

    def partition_by(self, partitioner: Partitioner, **kwargs) -> "RDD":
        """Repartition (key, value) pairs by ``partitioner`` (shuffle)."""
        if self.partitioner == partitioner:
            return self
        return ShuffledRDD(self.ctx, self, partitioner, combiner=None, group=False, **kwargs)

    def _target_partitioner(self, num_partitions: int | None) -> Partitioner:
        if num_partitions is not None:
            return HashPartitioner(num_partitions)
        if self.partitioner is not None:
            return self.partitioner
        return HashPartitioner(self.num_partitions)

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
        **kwargs,
    ) -> "RDD":
        """Merge values per key with an associative function.

        When this dataset is already hash-partitioned the merge happens
        narrowly inside each partition (no shuffle), matching Spark's
        known-partitioner optimization.
        """
        target = self._target_partitioner(num_partitions)
        if self.partitioner == target:
            def local_reduce(_s: int, part: list) -> list:
                acc: dict = {}
                for k, v in part:
                    acc[k] = fn(acc[k], v) if k in acc else v
                return list(acc.items())

            kwargs.setdefault("op_cost", SHUFFLE_LIKE)
            return self.map_partitions(
                local_reduce, preserves_partitioning=True, streamable=True, **kwargs
            )
        return ShuffledRDD(self.ctx, self, target, combiner=fn, group=False, **kwargs)

    def group_by_key(self, num_partitions: int | None = None, **kwargs) -> "RDD":
        """Group values per key into lists (always a shuffle)."""
        target = self._target_partitioner(num_partitions)
        return ShuffledRDD(self.ctx, self, target, combiner=None, group=True, **kwargs)

    def cogroup(self, other: "RDD", num_partitions: int | None = None, **kwargs) -> "RDD":
        """Pair up grouped values of two keyed datasets: (k, (vs, ws))."""
        width = num_partitions or max(self.num_partitions, other.num_partitions)
        return CoGroupedRDD(self.ctx, self, other, HashPartitioner(width), **kwargs)

    def join(self, other: "RDD", num_partitions: int | None = None, **kwargs) -> "RDD":
        """Inner join of two keyed datasets: (k, (v, w))."""
        grouped = self.cogroup(other, num_partitions, **kwargs)

        def emit(_s: int, part: list) -> list:
            out = []
            for k, (vs, ws) in part:
                for v in vs:
                    for w in ws:
                        out.append((k, (v, w)))
            return out

        return grouped.map_partitions(
            emit, op_cost=SHUFFLE_LIKE, preserves_partitioning=True,
            streamable=True, name=f"join({self.name},{other.name})",
        )

    def distinct(self, num_partitions: int | None = None, **kwargs) -> "RDD":
        """Remove duplicate elements (shuffle by the element itself)."""
        keyed = self.map_partitions(
            lambda _s, part: [(x, None) for x in part],
            elem_op=("map", lambda x: (x, None)),
        )
        reduced = keyed.reduce_by_key(lambda a, _b: a, num_partitions, **kwargs)

        def first(kv):
            k, _ = kv
            return k

        return reduced.map_partitions(
            lambda _s, part: [k for k, _ in part],
            preserves_partitioning=False,
            elem_op=("map", first),
            name=f"distinct({self.name})",
        )

    # ------------------------------------------------------------------
    # Actions (trigger jobs)
    # ------------------------------------------------------------------
    def collect(self) -> list:
        """Materialize and return all elements (driver-side list)."""
        parts = self.ctx.run_job(self, lambda _s, part: part)
        return [x for part in parts for x in part]

    def count(self) -> int:
        """Number of elements."""
        return sum(self.ctx.run_job(self, lambda _s, part: len(part)))

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Fold all elements with an associative function."""
        partials = [
            p for p in self.ctx.run_job(
                self, lambda _s, part: _reduce_or_none(fn, part)
            )
            if p is not None
        ]
        if not partials:
            raise DataflowError("reduce() of an empty RDD")
        acc = partials[0]
        for p in partials[1:]:
            acc = fn(acc, p)
        return acc

    def sum(self) -> float:
        """Sum of (numeric) elements."""
        return float(sum(self.ctx.run_job(self, lambda _s, part: sum(part) if part else 0.0)))

    def take(self, n: int) -> list:
        """First ``n`` elements in partition order (materializes everything).

        A simulator simplification: real Spark runs incremental jobs; here a
        single job materializes the dataset, which charges identical cache
        traffic for our purposes.
        """
        if n < 0:
            raise DataflowError("take() needs a non-negative count")
        out: list = []
        for part in self.ctx.run_job(self, lambda _s, part: part):
            for x in part:
                if len(out) == n:
                    return out
                out.append(x)
        return out

    def __repr__(self) -> str:
        return f"<{type(self).__name__} R{self.rdd_id} '{self.name}' x{self.num_partitions}>"


def _reduce_or_none(fn: Callable[[Any, Any], Any], part: list) -> Any:
    if not part:
        return None
    acc = part[0]
    for x in part[1:]:
        acc = fn(acc, x)
    return acc


class SourceRDD(RDD):
    """A dataset generated per partition by ``gen_fn(split, rng)``.

    Generation is deterministic: the RNG is derived from the context seed,
    the RDD id and the split, so recomputation after eviction reproduces
    identical data (needed for the recovery layer to be semantically sound).
    """

    def __init__(
        self,
        ctx: "BlazeContext",
        gen_fn: Callable[[int, Any], Iterable],
        num_partitions: int,
        **kwargs,
    ) -> None:
        super().__init__(ctx, [], num_partitions, sig_extra=("source", gen_fn), **kwargs)
        self._gen_fn = gen_fn

    def compute(self, split: int, narrow_data: list[list], shuffle_data: list[list]) -> list:
        rng = self.ctx.rng_for(self.rdd_id, split)
        return list(self._gen_fn(split, rng))


class ParallelCollectionRDD(RDD):
    """A driver-side collection sliced into partitions."""

    def __init__(self, ctx: "BlazeContext", data: list, num_partitions: int, **kwargs) -> None:
        super().__init__(
            ctx, [], num_partitions, sig_extra=("data", tuple(data)), **kwargs
        )
        self._slices = _slice(data, num_partitions)

    def compute(self, split: int, narrow_data: list[list], shuffle_data: list[list]) -> list:
        return list(self._slices[split])


def _slice(data: list, n: int) -> list[list]:
    """Split ``data`` into ``n`` contiguous, size-balanced chunks."""
    size = len(data)
    return [data[size * i // n : size * (i + 1) // n] for i in range(n)]


class MapPartitionsRDD(RDD):
    """Narrow one-to-one transform of a single parent.

    ``elem_op`` / ``streamable`` carry the fusion metadata described on
    :meth:`RDD.map_partitions`; both default to "opaque partition body".
    """

    def __init__(
        self,
        ctx: "BlazeContext",
        parent: RDD,
        fn: Callable[[int, list], Iterable],
        op_cost: OpCost | None = None,
        size_model: SizeModel | None = None,
        preserves_partitioning: bool = False,
        name: str | None = None,
        elem_op: "tuple[str, Callable] | None" = None,
        streamable: bool = False,
    ) -> None:
        super().__init__(
            ctx,
            [OneToOneDependency(parent)],
            parent.num_partitions,
            name=name,
            op_cost=op_cost or MAP_LIKE,
            size_model=size_model or parent.size_model,
            partitioner=parent.partitioner if preserves_partitioning else None,
            sig_extra=("map", fn, streamable, preserves_partitioning),
        )
        self._fn = fn
        self.elem_op = elem_op
        self.streamable = streamable

    def compute(self, split: int, narrow_data: list[list], shuffle_data: list[list]) -> list:
        (parent_part,) = narrow_data
        out = self._fn(split, parent_part)
        # partitions are immutable engine-wide, so a body that already
        # built a fresh list needs no defensive copy
        return out if type(out) is list else list(out)


class UnionRDD(RDD):
    """Concatenation: child partitions are the parents' partitions in order."""

    def __init__(self, ctx: "BlazeContext", parents: list[RDD], **kwargs) -> None:
        if not parents:
            raise DataflowError("union needs at least one parent")
        deps: list[Dependency] = []
        offset = 0
        for parent in parents:
            deps.append(RangeDependency(parent, 0, offset, parent.num_partitions))
            offset += parent.num_partitions
        super().__init__(ctx, deps, offset, sig_extra=("union",), **kwargs)

    def compute(self, split: int, narrow_data: list[list], shuffle_data: list[list]) -> list:
        (parent_part,) = narrow_data
        return parent_part  # pass-through; partitions are immutable


class CoalesceRDD(RDD):
    """Narrow repartitioning: packs contiguous parent partitions together."""

    def __init__(
        self,
        ctx: "BlazeContext",
        parent: RDD,
        num_partitions: int,
        **kwargs,
    ) -> None:
        kwargs.setdefault("size_model", parent.size_model)
        super().__init__(
            ctx,
            [CoalesceDependency(parent, num_partitions)],
            num_partitions,
            sig_extra=("coalesce",),
            **kwargs,
        )

    def compute(self, split: int, narrow_data: list[list], shuffle_data: list[list]) -> list:
        if len(narrow_data) == 1:
            return narrow_data[0]  # pass-through; partitions are immutable
        out: list = []
        for part in narrow_data:
            out.extend(part)
        return out


class ZipPartitionsRDD(RDD):
    """Combine co-indexed partitions of equal-width parents."""

    def __init__(
        self,
        ctx: "BlazeContext",
        parents: list[RDD],
        fn: Callable[..., Iterable],
        op_cost: OpCost | None = None,
        size_model: SizeModel | None = None,
        name: str | None = None,
        preserves_partitioning: bool = False,
    ) -> None:
        widths = {p.num_partitions for p in parents}
        if len(widths) != 1:
            raise DataflowError(f"zip_partitions requires equal widths, got {sorted(widths)}")
        super().__init__(
            ctx,
            [OneToOneDependency(p) for p in parents],
            parents[0].num_partitions,
            name=name,
            op_cost=op_cost or MAP_LIKE,
            size_model=size_model or parents[0].size_model,
            partitioner=parents[0].partitioner if preserves_partitioning else None,
            sig_extra=("zip", fn),
        )
        self._fn = fn

    def compute(self, split: int, narrow_data: list[list], shuffle_data: list[list]) -> list:
        out = self._fn(split, *narrow_data)
        return out if type(out) is list else list(out)


class ShuffledRDD(RDD):
    """Reduce side of a shuffle: one partition per reduce split.

    With a ``combiner`` the output is ``(k, combined_value)`` per key; with
    ``group=True`` it is ``(k, [values])``; with neither, raw ``(k, v)``
    records land in their target partition (``partition_by``).
    """

    def __init__(
        self,
        ctx: "BlazeContext",
        parent: RDD,
        partitioner: Partitioner,
        combiner: Callable[[Any, Any], Any] | None,
        group: bool,
        op_cost: OpCost | None = None,
        size_model: SizeModel | None = None,
        name: str | None = None,
    ) -> None:
        dep = ShuffleDependency(parent, partitioner, combiner=combiner)
        super().__init__(
            ctx,
            [dep],
            partitioner.num_partitions,
            name=name,
            op_cost=op_cost or SHUFFLE_LIKE,
            size_model=size_model or parent.size_model,
            partitioner=partitioner,
            sig_extra=("shuffled", group),
        )
        self._group = group

    def compute(self, split: int, narrow_data: list[list], shuffle_data: list[list]) -> list:
        (records,) = shuffle_data
        dep = self.shuffle_deps[0]
        if dep.combiner is not None or self._group:
            return records  # shuffle layer already merged/grouped (fresh list)
        # partition_by: the shuffle layer groups values; flatten them back
        # into raw (k, v) records.
        return [(k, v) for k, vs in records for v in vs]


class CoGroupedRDD(RDD):
    """Two-parent grouping producing (k, ([left values], [right values])).

    A parent that is already partitioned by the target partitioner joins
    through a *narrow* one-to-one dependency (no re-shuffle) — Spark's
    co-partitioning optimization, which GraphX-style iterative workloads
    rely on to read the cached graph/rank partitions directly every
    iteration.  Other parents contribute through shuffle dependencies.
    """

    def __init__(
        self,
        ctx: "BlazeContext",
        left: RDD,
        right: RDD,
        partitioner: Partitioner,
        op_cost: OpCost | None = None,
        size_model: SizeModel | None = None,
        name: str | None = None,
    ) -> None:
        deps: list[Dependency] = []
        sides: list[str] = []
        for parent in (left, right):
            if parent.partitioner == partitioner:
                deps.append(OneToOneDependency(parent))
                sides.append("narrow")
            else:
                deps.append(ShuffleDependency(parent, partitioner, combiner=None))
                sides.append("shuffle")
        super().__init__(
            ctx,
            deps,
            partitioner.num_partitions,
            name=name or f"cogroup({left.name},{right.name})",
            op_cost=op_cost or SHUFFLE_LIKE,
            size_model=size_model or left.size_model,
            partitioner=partitioner,
            sig_extra=("cogroup",),
        )
        self._sides = sides

    def compute(self, split: int, narrow_data: list[list], shuffle_data: list[list]) -> list:
        # Single-lookup dict grouping with bound locals; a vectorized
        # (argsort-based) variant was benchmarked and lost at every batch
        # size — the per-key value lists dominate, not the key probing.
        sides = self._side_records(narrow_data, shuffle_data)
        merged: dict = {}
        get = merged.get
        for side_idx, (records, grouped) in enumerate(sides):
            if grouped:
                for k, vs in records:  # grouped (k, [values])
                    entry = get(k)
                    if entry is None:
                        merged[k] = entry = ([], [])
                    entry[side_idx].extend(vs)
            else:
                for k, v in records:  # raw (k, v) records
                    entry = get(k)
                    if entry is None:
                        merged[k] = entry = ([], [])
                    entry[side_idx].append(v)
        return list(merged.items())

    def _side_records(
        self, narrow_data: list[list], shuffle_data: list[list]
    ) -> list[tuple[list, bool]]:
        """Each side's records paired with whether values arrive grouped."""
        narrow_iter = iter(narrow_data)
        shuffle_iter = iter(shuffle_data)
        return [
            (next(shuffle_iter), True) if kind == "shuffle" else (next(narrow_iter), False)
            for kind in self._sides
        ]
