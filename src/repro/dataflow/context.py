"""The driver-side entry point (Spark's ``SparkContext`` analogue).

A :class:`BlazeContext` owns one simulated cluster, one cache manager (the
system under test), and the RDD registry.  Workloads build RDDs through it
and trigger jobs with actions; experiments read the metrics collector and
virtual clock afterwards.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from ..cluster.cachemanager import CacheManager
from ..cluster.cluster import Cluster
from ..cluster.driver import Driver
from ..config import BlazeConfig, ClusterConfig
from ..errors import DataflowError
from ..faults.injector import FaultInjector
from ..faults.schedule import FaultSchedule
from ..metrics.collector import MetricsCollector
from ..sim.rng import make_rng
from ..tracing.report import RunReport
from ..tracing.tracer import NULL_TRACER, InMemoryTracer, Tracer
from .operators import OpCost, SizeModel
from .rdd import ParallelCollectionRDD, RDD, SourceRDD


class BlazeContext:
    """Builds datasets and runs jobs on a simulated cluster."""

    def __init__(
        self,
        cluster_config: ClusterConfig | None = None,
        cache_manager: CacheManager | None = None,
        seed: int = 0,
        tracer: Tracer | None = None,
        blaze_config: "BlazeConfig | None" = None,
        fault_schedule: "FaultSchedule | None" = None,
    ) -> None:
        if cache_manager is None:
            from ..caching.manager import SparkCacheManager

            cache_manager = SparkCacheManager()
        self.config = cluster_config or ClusterConfig()
        self.seed = int(seed)
        #: engine-level kill switch for the fused data plane (narrow-chain
        #: pipelining + bulk shuffle bucketing); defaults to the
        #: ``BlazeConfig`` default so plain contexts get the fast plane.
        self.fused_execution = blaze_config.fused_execution if blaze_config else True
        if tracer is None:
            tracer = InMemoryTracer() if self.config.tracing_enabled else NULL_TRACER
        self.tracer = tracer
        self.cluster = Cluster(self.config, tracer=tracer)
        self.cluster.shuffle.fast_path = self.fused_execution
        # Fault injection has a double opt-in: a schedule must be passed
        # AND ``BlazeConfig.fault_injection`` (default off) flipped on.
        # Flag on with an *empty* schedule is calibration-only mode (the
        # injector samples recovery costs without perturbing the run).
        self.fault_injector: FaultInjector | None = None
        if fault_schedule is not None and blaze_config is not None and blaze_config.fault_injection:
            self.fault_injector = FaultInjector(
                fault_schedule, self.cluster, cache_manager,
                max_task_retries=blaze_config.fault_max_task_retries,
                retry_backoff_seconds=blaze_config.fault_retry_backoff_seconds,
            )
        self.driver = Driver(
            self.cluster, cache_manager,
            fused_execution=self.fused_execution,
            fault_injector=self.fault_injector,
        )
        self.cache_manager = cache_manager
        self._rdds: list[RDD] = []
        self._stopped = False

    # ------------------------------------------------------------------
    # Registry / determinism plumbing
    # ------------------------------------------------------------------
    def register_rdd(self, rdd: RDD) -> int:
        """Assign the next RDD id (called from ``RDD.__init__``)."""
        self._rdds.append(rdd)
        return len(self._rdds) - 1

    def rdd_by_id(self, rdd_id: int) -> RDD:
        return self._rdds[rdd_id]

    def all_rdds(self) -> list[RDD]:
        """Every dataset registered so far, in id order."""
        return list(self._rdds)

    @property
    def num_rdds(self) -> int:
        return len(self._rdds)

    def rng_for(self, rdd_id: int, split: int) -> np.random.Generator:
        """Deterministic per-partition generator (recomputation-stable)."""
        return make_rng(self.seed, rdd_id, split)

    # ------------------------------------------------------------------
    # Dataset constructors
    # ------------------------------------------------------------------
    def parallelize(self, data: list, num_partitions: int | None = None, **kwargs) -> RDD:
        """Distribute a driver-side collection."""
        n = num_partitions or self.config.num_executors
        return ParallelCollectionRDD(self, list(data), n, **kwargs)

    def source(
        self,
        gen_fn: Callable[[int, np.random.Generator], Iterable],
        num_partitions: int,
        op_cost: OpCost | None = None,
        size_model: SizeModel | None = None,
        name: str | None = None,
    ) -> RDD:
        """A deterministic generated dataset (synthetic workload input)."""
        return SourceRDD(
            self, gen_fn, num_partitions,
            op_cost=op_cost, size_model=size_model, name=name,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_job(self, final_rdd: RDD, action_fn: Callable[[int, list], Any]) -> list:
        """Submit an action over ``final_rdd``; returns per-partition results."""
        if self._stopped:
            raise DataflowError("context already stopped")
        if final_rdd.ctx is not self:
            raise DataflowError("RDD belongs to a different context")
        return self.driver.run_job(final_rdd, action_fn)

    def unpersist_rdd(self, rdd: RDD) -> None:
        self.driver.unpersist_rdd(rdd)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time (the application's running clock)."""
        return self.cluster.clock.now

    @property
    def metrics(self) -> MetricsCollector:
        return self.cluster.metrics

    def report(self) -> RunReport:
        """The stable results façade: metric aggregates plus trace replay.

        Benchmarks and examples should read results from here instead of
        reaching into ``ctx.cluster.metrics``.  Callable before or after
        :meth:`stop`; the metric ledgers survive shutdown.
        """
        return RunReport.from_context(self)

    @property
    def jobs(self):
        """Jobs submitted so far, in order."""
        return self.driver.job_log

    def stop(self) -> None:
        """Finish the application; further jobs are rejected.

        Idempotent.  Releases the run's block-store and shuffle state so
        repeated context creation in one process cannot leak blocks between
        experiments; metric ledgers and the trace remain readable.
        """
        if self._stopped:
            return
        self._stopped = True
        for executor in self.cluster.executors:
            executor.bm.release()
        self.cluster.shuffle.release()
        self.cache_manager.detach()

    def __enter__(self) -> "BlazeContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"<BlazeContext {self.cache_manager.name} "
            f"rdds={len(self._rdds)} t={self.now:.2f}s>"
        )
