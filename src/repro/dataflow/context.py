"""The driver-side entry point (Spark's ``SparkContext`` analogue).

Since the job-service redesign, :class:`BlazeContext` is a compatibility
shim: a one-tenant :class:`~repro.service.JobClient` over a private
:class:`~repro.service.JobService` that owns the cluster, the cache
manager (the system under test), and the driver.  The constructor, the
dataset-building surface, and — crucially — the produced traces are
unchanged: a ``BlazeContext`` run is byte-identical to what the
pre-service engine emitted.

Multi-application programs should use :class:`~repro.service.JobService`
directly (see ``docs/service.md``).
"""

from __future__ import annotations

from ..cluster.cachemanager import CacheManager
from ..config import BlazeConfig, ClusterConfig, ServiceConfig
from ..elastic.schedule import ScaleSchedule
from ..faults.schedule import FaultSchedule
from ..service.client import JobClient
from ..service.service import JobService
from ..service.tenancy import DEFAULT_TENANT
from ..tracing.tracer import Tracer


class BlazeContext(JobClient):
    """Builds datasets and runs jobs on a (privately owned) simulated cluster."""

    def __init__(
        self,
        cluster_config: ClusterConfig | None = None,
        cache_manager: CacheManager | None = None,
        seed: int = 0,
        tracer: Tracer | None = None,
        blaze_config: "BlazeConfig | None" = None,
        fault_schedule: "FaultSchedule | None" = None,
        scale_schedule: "ScaleSchedule | None" = None,
    ) -> None:
        # Identity RDD ids (dedup off): with one application there is
        # nothing to share, and sequential ids keep the legacy numbering
        # without fingerprinting overhead.  No service trace events, so
        # the trace stream matches the pre-service engine byte for byte.
        service_config = ServiceConfig(dedup_enabled=False)
        service = JobService(
            cluster_config=cluster_config,
            cache_manager=cache_manager,
            seed=seed,
            tracer=tracer,
            blaze_config=blaze_config,
            fault_schedule=fault_schedule,
            service_config=service_config,
            scale_schedule=scale_schedule,
        )
        super().__init__(service, tenant=DEFAULT_TENANT, seed=seed)

    def stop(self) -> None:
        """Finish the application; further jobs are rejected.

        Idempotent.  Because this context owns its service, stopping also
        releases the run's block-store and shuffle state so repeated
        context creation in one process cannot leak blocks between
        experiments; metric ledgers and the trace remain readable.
        """
        super().stop()
        self.service.shutdown()

    def __enter__(self) -> "BlazeContext":
        return self

    def __repr__(self) -> str:
        return (
            f"<BlazeContext {self.cache_manager.name} "
            f"rdds={self.num_rdds} t={self.now:.2f}s>"
        )
