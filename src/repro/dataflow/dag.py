"""Job and stage construction (the DAGScheduler's planning half).

A job is triggered by an action on a final RDD.  Stages are delimited by
shuffle dependencies: each :class:`ShuffleDependency` reachable from the
final RDD through narrow edges becomes a parent ``ShuffleMapStage`` whose
tasks compute the *parent* RDD's partitions and bucket them for the reduce
side; the action itself runs in the ``ResultStage``.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable

from ..errors import DataflowError
from .dependencies import ShuffleDependency
from .lineage import narrow_closure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rdd import RDD

_stage_ids = itertools.count()


class Stage:
    """A pipelined unit of execution.

    ``rdd`` is the terminal dataset the stage's tasks materialize: for a
    shuffle-map stage it is the *map side* (``shuffle_dep.parent``); for the
    result stage it is the job's final RDD.
    """

    def __init__(
        self,
        rdd: "RDD",
        shuffle_dep: ShuffleDependency | None,
        parents: list["Stage"],
    ) -> None:
        self.stage_id = next(_stage_ids)
        self.rdd = rdd
        self.shuffle_dep = shuffle_dep
        self.parents = parents
        self.job: "Job | None" = None
        self.seq_in_job: int = -1  # position in the job's execution order

    @property
    def is_result(self) -> bool:
        return self.shuffle_dep is None

    @property
    def num_tasks(self) -> int:
        return self.rdd.num_partitions

    def referenced_rdds(self, materialized: set[int] | None = None) -> list["RDD"]:
        """Datasets this stage's tasks are expected to touch.

        The narrow closure pruned at annotation-cached datasets: a cached
        parent is read, not recomputed, so its own ancestors do not count
        as references of this stage.  Passing the set of already
        ``materialized`` dataset ids refines the pruning: a cached dataset
        being produced for the first time computes *through* its parents,
        so those still count (see :func:`narrow_closure`).
        """
        return narrow_closure(self.rdd, stop_at_cached=True, materialized=materialized)

    def __repr__(self) -> str:
        kind = "Result" if self.is_result else f"ShuffleMap(s{self.shuffle_dep.shuffle_id})"
        return f"<Stage {self.stage_id} {kind} rdd=R{self.rdd.rdd_id} tasks={self.num_tasks}>"


class Job:
    """An action-triggered execution: ordered stages ending in a result."""

    def __init__(
        self,
        job_id: int,
        final_rdd: "RDD",
        action_fn: Callable[[int, list], Any],
        stages: list[Stage],
    ) -> None:
        if not stages or not stages[-1].is_result:
            raise DataflowError("a job must end with its result stage")
        self.job_id = job_id
        self.final_rdd = final_rdd
        self.action_fn = action_fn
        self.stages = stages
        #: set by the driver at submission: the stages that will actually
        #: execute (Spark's getMissingParentStages pruning — ancestors of
        #: fully cached datasets and completed shuffles are not submitted)
        self.stages_to_run: list[Stage] | None = None
        for seq, stage in enumerate(stages):
            stage.job = self
            stage.seq_in_job = seq

    @property
    def result_stage(self) -> Stage:
        return self.stages[-1]

    @property
    def execution_stages(self) -> list[Stage]:
        """Stages expected to execute (falls back to all planned stages)."""
        return self.stages_to_run if self.stages_to_run is not None else self.stages

    def lineage_rdds(self) -> list["RDD"]:
        """All datasets appearing anywhere in this job's stages."""
        seen: dict[int, RDD] = {}
        for stage in self.stages:
            for rdd in stage.referenced_rdds():
                seen.setdefault(rdd.rdd_id, rdd)
        return list(seen.values())

    def __repr__(self) -> str:
        return f"<Job {self.job_id} final=R{self.final_rdd.rdd_id} stages={len(self.stages)}>"


def job_reference_sets(
    job: Job,
    materialized: set[int] | None = None,
) -> list[tuple[int, list["RDD"]]]:
    """Per-stage expected references, first-touch aware.

    Walks the job's execution stages in order, pruning each stage's closure
    at cached datasets that have already been produced (either before this
    job, per ``materialized``, or by an earlier stage of this job).
    Returns ``[(stage_seq, [rdds]), ...]`` and does not mutate the input.
    """
    state = set(materialized or ())
    out: list[tuple[int, list[RDD]]] = []
    for stage in job.execution_stages:
        refs = stage.referenced_rdds(state)
        out.append((stage.seq_in_job, refs))
        state.update(r.rdd_id for r in refs)
    return out


def build_job(job_id: int, final_rdd: "RDD", action_fn: Callable[[int, list], Any]) -> Job:
    """Plan the stage DAG for an action on ``final_rdd``.

    Stages are deduplicated by shuffle id within the job, and the returned
    list is a valid topological execution order (parents first).
    """
    stage_by_shuffle: dict[int, Stage] = {}

    def parent_stages(rdd: "RDD") -> list[Stage]:
        found: list[Stage] = []
        seen_shuffles: set[int] = set()
        for node in narrow_closure(rdd):
            for dep in node.shuffle_deps:
                if dep.shuffle_id in seen_shuffles:
                    continue
                seen_shuffles.add(dep.shuffle_id)
                found.append(stage_for(dep))
        return found

    def stage_for(dep: ShuffleDependency) -> Stage:
        existing = stage_by_shuffle.get(dep.shuffle_id)
        if existing is not None:
            return existing
        stage = Stage(dep.parent, dep, parent_stages(dep.parent))
        stage_by_shuffle[dep.shuffle_id] = stage
        return stage

    result = Stage(final_rdd, None, parent_stages(final_rdd))

    # Topological order, parents first, deterministic.
    ordered: list[Stage] = []
    visited: set[int] = set()

    def visit(stage: Stage) -> None:
        if stage.stage_id in visited:
            return
        visited.add(stage.stage_id)
        for parent in stage.parents:
            visit(parent)
        ordered.append(stage)

    visit(result)
    return Job(job_id, final_rdd, action_fn, ordered)
