"""Partitioners decide which reduce partition a key belongs to."""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from typing import Any, Hashable

from ..errors import ConfigError


def _stable_hash(key: Hashable) -> int:
    """A hash that is stable across processes (unlike ``hash`` on str).

    Python randomizes string hashing per process; the simulator needs the
    same key-to-partition mapping on every run, so hash through CRC32 of the
    repr for strings and common containers, and plain ``hash`` for ints.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key
    if isinstance(key, (str, bytes)):
        data = key.encode("utf-8") if isinstance(key, str) else key
        return zlib.crc32(data)
    if isinstance(key, tuple):
        acc = 0x345678
        for item in key:
            acc = (acc * 1000003) ^ _stable_hash(item)
        return acc
    if isinstance(key, float):
        return hash(key)
    raise ConfigError(f"unhashable or unsupported shuffle key type: {type(key)!r}")


class Partitioner(ABC):
    """Maps keys onto ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ConfigError("num_partitions must be positive")
        self.num_partitions = num_partitions

    @abstractmethod
    def partition_for(self, key: Any) -> int:
        """Return the partition index for ``key``."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default partitioner: stable hash modulo partition count."""

    def partition_for(self, key: Any) -> int:
        return _stable_hash(key) % self.num_partitions

    def __repr__(self) -> str:
        return f"HashPartitioner({self.num_partitions})"


class RangePartitioner(Partitioner):
    """Splits ordered integer keys into contiguous ranges.

    Used by workloads whose keys are dense vertex ids; produces the skewed
    per-partition sizes seen with power-law graphs (high-degree vertices
    concentrate in low ranges).
    """

    def __init__(self, num_partitions: int, key_space: int) -> None:
        super().__init__(num_partitions)
        if key_space <= 0:
            raise ConfigError("key_space must be positive")
        self.key_space = key_space

    def partition_for(self, key: Any) -> int:
        if not isinstance(key, int):
            raise ConfigError("RangePartitioner requires integer keys")
        clamped = min(max(key, 0), self.key_space - 1)
        return min(clamped * self.num_partitions // self.key_space, self.num_partitions - 1)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self.num_partitions == other.num_partitions
            and self.key_space == other.key_space
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", self.num_partitions, self.key_space))

    def __repr__(self) -> str:
        return f"RangePartitioner({self.num_partitions}, key_space={self.key_space})"
