"""RDD dependencies: narrow (pipelined) vs shuffle (stage boundary).

Mirrors Spark's dependency model (section 2 of the paper): narrow
dependencies let a child partition be computed from a bounded set of parent
partitions inside one task; shuffle dependencies require data from *all*
parent partitions and therefore delimit stages.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable

from ..errors import DataflowError
from .partitioner import Partitioner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rdd import RDD

_shuffle_ids = itertools.count()


class Dependency(ABC):
    """Base class; ``parent`` is the upstream RDD."""

    def __init__(self, parent: "RDD") -> None:
        self.parent = parent


class NarrowDependency(Dependency):
    """A child partition reads a bounded set of parent partitions."""

    @abstractmethod
    def parent_splits(self, child_split: int) -> list[int]:
        """Parent partition indices needed to compute ``child_split``."""


class OneToOneDependency(NarrowDependency):
    """Partition i of the child reads partition i of the parent (map etc.)."""

    def parent_splits(self, child_split: int) -> list[int]:
        return [child_split]


class RangeDependency(NarrowDependency):
    """A contiguous range of child partitions maps onto the parent (union).

    Child splits ``[out_start, out_start + length)`` read parent splits
    ``[in_start, in_start + length)``.
    """

    def __init__(self, parent: "RDD", in_start: int, out_start: int, length: int) -> None:
        super().__init__(parent)
        if length <= 0:
            raise DataflowError("RangeDependency length must be positive")
        self.in_start = in_start
        self.out_start = out_start
        self.length = length

    def parent_splits(self, child_split: int) -> list[int]:
        if self.out_start <= child_split < self.out_start + self.length:
            return [child_split - self.out_start + self.in_start]
        return []


class CoalesceDependency(NarrowDependency):
    """Each child partition reads a contiguous block of parent partitions.

    Child split ``c`` of ``num_child`` reads parent splits
    ``[num_parent * c // num_child, num_parent * (c + 1) // num_child)`` —
    the same contiguous, size-balanced packing Spark's shuffle-free
    ``coalesce`` uses.
    """

    def __init__(self, parent: "RDD", num_child: int) -> None:
        super().__init__(parent)
        if num_child <= 0:
            raise DataflowError("coalesce needs at least one partition")
        if num_child > parent.num_partitions:
            raise DataflowError(
                "coalesce cannot increase the partition count "
                f"({parent.num_partitions} -> {num_child}); use a shuffle"
            )
        self.num_child = num_child

    def parent_splits(self, child_split: int) -> list[int]:
        n_parent = self.parent.num_partitions
        start = n_parent * child_split // self.num_child
        end = n_parent * (child_split + 1) // self.num_child
        return list(range(start, end))


class ShuffleDependency(Dependency):
    """A wide dependency carrying a shuffle id and a partitioner.

    ``key_fn`` extracts the shuffle key from an element; ``combiner`` is an
    optional map-side/reduce-side associative merge ``(v, v) -> v`` (used by
    reduceByKey); when absent the reduce side groups values into lists.
    """

    def __init__(
        self,
        parent: "RDD",
        partitioner: Partitioner,
        combiner: Callable[[Any, Any], Any] | None = None,
    ) -> None:
        super().__init__(parent)
        self.partitioner = partitioner
        self.combiner = combiner
        self.shuffle_id = next(_shuffle_ids)

    def __repr__(self) -> str:
        return f"ShuffleDependency(id={self.shuffle_id}, parent=R{self.parent.rdd_id})"
