"""Cost and size models attached to dataflow operators.

The simulator executes operators for real on small data but charges *virtual*
time and *modeled* bytes, which is how a laptop-scale run reproduces
cluster-scale memory pressure.  Each RDD carries:

- an :class:`OpCost` describing the virtual seconds needed to produce one of
  its partitions from already-available parent data, and
- a :class:`SizeModel` mapping the partition's real element count to modeled
  bytes (plus a serialization-cost factor; the paper observes SVD++
  partitions serialize 2.5-6.4x slower than other workloads').
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class OpCost:
    """Virtual compute seconds for producing one partition.

    ``seconds = fixed + per_element_in * n_in + per_element_out * n_out``.

    ``fixed`` models task launch plus per-partition setup; the per-element
    terms model the operator body.  Resource-heavy operators (join,
    groupByKey) get larger per-element costs than map/filter, mirroring the
    paper's observation in section 2.1.
    """

    fixed: float = 1e-4
    per_element_in: float = 0.0
    per_element_out: float = 0.0

    def __post_init__(self) -> None:
        if self.fixed < 0 or self.per_element_in < 0 or self.per_element_out < 0:
            raise ConfigError("operator costs must be non-negative")

    def seconds(self, n_in: int, n_out: int) -> float:
        """Virtual seconds to compute a partition with the given cardinalities."""
        return self.fixed + self.per_element_in * n_in + self.per_element_out * n_out

    def scaled(self, factor: float) -> "OpCost":
        """A copy with all components multiplied by ``factor``."""
        if factor < 0:
            raise ConfigError("cost scale factor must be non-negative")
        return OpCost(
            fixed=self.fixed * factor,
            per_element_in=self.per_element_in * factor,
            per_element_out=self.per_element_out * factor,
        )


@dataclass(frozen=True, slots=True)
class SizeModel:
    """Modeled on-heap size of a partition.

    ``bytes = fixed_bytes + bytes_per_element * n_elements``.

    ``ser_factor`` scales the (de)serialization time charged when the
    partition crosses a disk or network boundary, relative to the cluster's
    baseline serialization throughput.

    With ``measured=True`` the model prices *measured* bytes instead of a
    per-element estimate: ``RDD.size_weight`` passes through the stored
    representation's real ``nbytes`` (a ColumnarBatch's payload bytes —
    the compressed size for compressed chunks) when the partition exposes
    one, and :meth:`bytes_for` treats the weight as bytes directly.  The
    measured weight threads through cost_d/cost_r/ILP unchanged, exactly
    like an estimated one.  Measured sizing is opt-in per rdd because it
    makes modeled pressure depend on the storage backend — the default
    keeps every preset's trace byte-identical columnar vs list.
    """

    bytes_per_element: float = 64.0
    fixed_bytes: float = 0.0
    ser_factor: float = 1.0
    measured: bool = False

    def __post_init__(self) -> None:
        if self.bytes_per_element < 0 or self.fixed_bytes < 0:
            raise ConfigError("size model bytes must be non-negative")
        if self.ser_factor <= 0:
            raise ConfigError("ser_factor must be positive")

    def bytes_for(self, n_elements: float) -> float:
        """Modeled bytes for a partition of weight ``n_elements``.

        The weight is an element count under estimated sizing and a byte
        measurement under ``measured=True``.
        """
        if self.measured:
            return self.fixed_bytes + float(n_elements)
        return self.fixed_bytes + self.bytes_per_element * n_elements


#: Cheap element-wise operators (map, filter).
MAP_LIKE = OpCost(fixed=1e-4, per_element_in=2e-7, per_element_out=1e-7)
#: Shuffle-producing aggregations (groupByKey, reduceByKey, join).
SHUFFLE_LIKE = OpCost(fixed=5e-4, per_element_in=8e-7, per_element_out=4e-7)
#: Numeric model updates (gradient computation, centroid update).
COMPUTE_HEAVY = OpCost(fixed=1e-3, per_element_in=4e-6, per_element_out=1e-7)
