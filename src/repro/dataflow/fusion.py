"""Fused narrow-chain execution: the data plane's pipelining layer.

Spark pipelines narrow transformations inside a stage: a chain of
one-to-one maps runs as a single pass over the input iterator, and the
intermediate datasets never exist as materialized collections.  The
simulator historically materialized every intermediate as a Python list
(`Driver._compute` recursion), which is faithful to the *cost model* but
dominates wall-clock time on map-heavy workloads.

This module recovers Spark's pipelining without perturbing anything the
caching layers observe.  A chain is fused only when every elided
intermediate

- is a plain element-wise ``MapPartitionsRDD`` (``elem_op`` set, default
  size weigher),
- has exactly one consumer in the whole dataset graph (so per-task
  memoization could never have deduplicated it), and
- will provably never be admitted by the cache manager
  (:meth:`~repro.cluster.cachemanager.CacheManager.will_never_store`),
  with a per-split runtime check that no block exists anywhere and the
  partition was never previously cached (no recovery accounting).

Under those conditions the unfused path's per-intermediate work reduces
to: an optional ``cache.miss`` trace instant, a compute-time charge, and
the ``on_partition_computed`` profiling callback — all of which the fused
executor replays in the exact unfused order with the exact unfused
cardinalities, so traces stay byte-identical and decisions bit-identical.

The module also hosts the bulk key-column helper the shuffle data plane
uses: extracting an integer key column as one ``numpy`` array so partition
ids can be computed vectorized instead of per-record, with a pure-Python
fallback for every other key type.  (Vectorized *grouping* — argsort +
run slicing — was benchmarked against the single-lookup dict loop and
lost at every batch size; building the many small per-key value lists is
the dominant cost, so grouping stays in plain Python everywhere.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

import numpy as np

from ..storage.columnar import ColumnarBatch
from ..tracing.tracer import executor_pid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.driver import Driver
    from ..cluster.executor import Executor
    from ..metrics.collector import TaskMetrics
    from .rdd import RDD


#: below this many records the numpy key-column setup costs more than
#: the per-record loop it replaces
BULK_MIN_RECORDS = 64


# ----------------------------------------------------------------------
# Narrow-chain fusion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedChain:
    """A fusable narrow chain: ``source -> mids[-1] -> ... -> mids[0] -> top``.

    ``mids`` are the elided intermediates ordered nearest-to-top first
    (the order the unfused recursion emits their ``cache.miss`` instants);
    ``source`` is materialized through the normal cache-aware path.
    """

    top: "RDD"
    mids: tuple
    source: "RDD"


class FusionPlanner:
    """Plans and executes fused narrow chains for one driver.

    Plans are structural and cached per ``(stage epoch, graph size)``:
    eligibility depends on lineage position and the consumer count, both
    of which only change at stage boundaries / when new datasets are
    registered (between jobs).  Residency is checked per split at
    execution time.
    """

    def __init__(self, driver: "Driver") -> None:
        self.driver = driver
        self.cluster = driver.cluster
        self.cache_manager = driver.cache_manager
        self.metrics = driver.metrics
        self._plans: dict[int, FusedChain | None] = {}
        self._children: dict[int, int] = {}
        self._stamp: tuple[int, int] = (-1, -1)
        self._epoch = 0

    def begin_stage(self) -> None:
        """Invalidate structural plans (lineage positions just moved)."""
        self._epoch += 1

    # -- planning ------------------------------------------------------
    def plan_for(self, rdd: "RDD") -> FusedChain | None:
        """The fused chain ending at ``rdd``, or None if nothing fuses."""
        ctx = rdd.ctx
        stamp = (self._epoch, ctx.num_rdds)
        if stamp != self._stamp:
            self._plans.clear()
            children: dict[int, int] = {}
            for r in ctx.all_rdds():
                for dep in r.deps:
                    pid = dep.parent.rdd_id
                    children[pid] = children.get(pid, 0) + 1
            self._children = children
            self._stamp = stamp
        rdd_id = rdd.rdd_id
        try:
            return self._plans[rdd_id]
        except KeyError:
            pass
        plan = self._plan(rdd)
        self._plans[rdd_id] = plan
        if plan is not None:
            self.metrics.chains_fused += 1
        return plan

    def _plan(self, rdd: "RDD") -> FusedChain | None:
        from .rdd import MapPartitionsRDD

        if type(rdd) is not MapPartitionsRDD:
            return None
        if rdd.elem_op is None and not rdd.streamable:
            return None
        mids: list = []
        children = self._children
        will_never_store = self.cache_manager.will_never_store
        node = rdd.deps[0].parent
        while (
            type(node) is MapPartitionsRDD
            and node.elem_op is not None
            and node.size_weigher is None
            and children.get(node.rdd_id, 0) == 1
            and will_never_store(node)
        ):
            mids.append(node)
            node = node.deps[0].parent
        if not mids:
            return None
        return FusedChain(top=rdd, mids=tuple(mids), source=node)

    def runtime_ok(self, chain: FusedChain, split: int) -> bool:
        """Per-split residency guard: every elided partition must miss.

        A resident block (stale cache from an earlier annotation) or a
        previously-cached id (recovery accounting) would make the unfused
        path observably different, so fall back to it.  ``_was_cached``
        suffices for both checks: every *new* block id enters a store
        through ``Driver.materialize``'s ``handle_cache`` call, after
        which the driver records the id — spills, promotions, and
        prefetches only relocate already-recorded blocks — so the set is
        a superset of everything currently resident anywhere.

        This guard also survives mid-chain *loss* (fault injection):
        ``_was_cached`` membership is never revoked, so a partition wiped
        by a crash keeps forcing the unfused path, whose recovery
        accounting recomputes (and re-offers) it — a fused pipeline must
        never silently elide a partition the run already paid to cache.
        """
        was_cached = self.driver._was_cached
        memo = self.driver._task_memo
        for mid in chain.mids:
            bid = (mid.rdd_id, split)
            if bid in memo or bid in was_cached:
                return False
        return True

    # -- execution -----------------------------------------------------
    def execute(
        self,
        chain: FusedChain,
        split: int,
        executor: "Executor",
        tm: "TaskMetrics",
    ) -> tuple[Any, int]:
        """Run the chain as one pass; returns (top partition, top n_in).

        Event/charge ordering replays the unfused recursion exactly:
        ``cache.miss`` instants top-down, then the source's own events,
        then per-intermediate compute charges and profiling callbacks
        bottom-up.  The caller charges the top itself.

        When the source arrives as a :class:`ColumnarBatch` and the
        columnar backend is enabled, the chain first attempts the
        vectorized kernel path (``repro.storage.kernels``); a kernel
        fallback lands on the iterator pipeline below before any charge
        or event fires, so the two paths are observationally
        indistinguishable — per-stage cardinalities feed one shared
        charge loop with identical float math either way.
        """
        driver = self.driver
        tracer = driver.tracer
        cm = self.cache_manager
        mids = chain.mids
        for mid in mids:
            if cm.is_cache_candidate(mid):
                driver.metrics.cache_misses += 1
        if tracer.enabled:
            pid = executor_pid(executor.executor_id)
            for mid in mids:
                if cm.is_cache_candidate(mid):
                    tracer.instant(
                        "cache.miss", "cache", pid=pid,
                        rdd=mid.rdd_id, split=split, recovery=False,
                    )

        src = driver.materialize(chain.source, split, executor, tm)

        stages = list(mids[::-1])
        top = chain.top
        out: Any = None
        stage_n_outs: list[int] | None = None

        # Vectorized kernel path: batch-at-a-time numpy execution of the
        # whole chain.  run_chain returns None (having touched nothing
        # observable) whenever the chain can't be vectorized faithfully.
        backend = driver.columnar
        if backend is not None and isinstance(src, ColumnarBatch):
            res = backend.kernels.run_chain(chain, stages, src, self.metrics)
            if res is not None:
                body, stage_n_outs = res
                if top.elem_op is not None:
                    # A custom size weigher must see the exact list the
                    # unfused path would hand it, so decode for those.
                    out = body if top.size_weigher is None else list(body)
                else:  # streamable map_partitions body over the mids' batch
                    produced = top._fn(split, iter(body))
                    out = produced if type(produced) is list else list(produced)
                self.metrics.kernel_partitions += 1

        if out is None and driver.shard is not None:
            # Sharded engine: substitute the worker's speculated top output
            # and per-stage cardinalities.  Checked only after the kernel
            # path declines so the kernel-vs-pipeline choice (and its
            # counters/batch outputs) is identical to the unsharded run.
            speculated = driver.shard.speculated_fused(chain, split)
            if speculated is not None:
                out, stage_n_outs = speculated

        if out is None:
            # Iterator pipeline.  Output counts are only measured where
            # they are not derivable (filter / flat_map); plain maps use
            # the C-level `map` iterator and inherit their input count.
            counts: list[list[int] | None] = []
            stream: Iterator = iter(src)
            for mid in stages:
                kind, fn = mid.elem_op
                if kind == "map":
                    counts.append(None)
                    stream = map(fn, stream)
                elif kind == "filter":
                    cell = [0]
                    counts.append(cell)
                    stream = _counted_filter(fn, stream, cell)
                else:  # flat_map
                    cell = [0]
                    counts.append(cell)
                    stream = _counted_flat_map(fn, stream, cell)

            if top.elem_op is not None:
                kind, fn = top.elem_op
                if kind == "map":
                    out = list(map(fn, stream))
                elif kind == "filter":
                    out = [x for x in stream if fn(x)]
                else:
                    out = [y for x in stream for y in fn(x)]
            else:  # streamable map_partitions body (single-pass consumer)
                produced = top._fn(split, stream)
                out = produced if type(produced) is list else list(produced)
                _exhaust(stream)  # the unfused path always computes everything

            stage_n_outs = []
            running = len(src)
            for j in range(len(stages)):
                cell = counts[j]
                if cell is not None:
                    running = cell[0]
                stage_n_outs.append(running)

        # Charge + observe in the unfused (deepest-first) order with
        # identical float math, whichever path produced the counts.
        recovery = driver._recovery_depth > 0
        on_computed = cm.on_partition_computed
        n_in = len(src)
        for mid, n_out in zip(stages, stage_n_outs):
            seconds = mid.op_cost.seconds(n_in, n_out)
            tm.compute_seconds += seconds
            if recovery:
                tm.recompute_seconds += seconds
            if mid.size_model.measured:
                # What the unfused path's size_weight returns for the
                # list intermediate a measured mid would materialize.
                weight = mid.size_model.bytes_per_element * n_out
            else:
                weight = float(n_out)
            on_computed(mid, split, n_in, n_out, seconds, weight)
            n_in = n_out

        self.metrics.partitions_pipelined += 1
        return out, n_in


def _counted_filter(pred: Callable, it: Iterator, cell: list) -> Iterator:
    n = 0
    for x in it:
        if pred(x):
            n += 1
            yield x
    cell[0] = n


def _counted_flat_map(fn: Callable, it: Iterator, cell: list) -> Iterator:
    n = 0
    for x in it:
        for y in fn(x):
            n += 1
            yield y
    cell[0] = n


def _exhaust(it: Iterator) -> None:
    for _ in it:
        pass


# ----------------------------------------------------------------------
# Bulk integer-key extraction (used by the shuffle write fast path)
# ----------------------------------------------------------------------
def int_keys_of(records) -> "np.ndarray | None":
    """The keys of ``records`` as an int64 array, or None if ineligible.

    Eligibility is decided by explicit *Python type* checks, not numpy
    dtype inference: the key column vectorizes only when every key is a
    genuine ``int`` (so modulo/compare semantics match ``_stable_hash``'s
    int passthrough) that fits in int64.  Everything else — ``bool`` keys
    (an int subclass numpy would happily cast to 0/1 while ``_stable_hash``
    sees the bool), mixed int/float columns (inference would promote the
    ints to float64), ints outside int64 range (silent wraparound under
    older inference rules), floats, strings, tuples, ragged records —
    lands on the exact pure-Python fallback.

    A :class:`ColumnarBatch` holding int-keyed tuples short-circuits all
    of that: its key column is already a validated int64 array.
    """
    key_column = getattr(records, "int_key_column", None)
    if key_column is not None:
        return key_column()
    try:
        keys = [r[0] for r in records]
    except (TypeError, IndexError, KeyError):  # non-subscriptable / empty keys
        return None
    if set(map(type, keys)) != {int}:
        return None
    try:
        return np.asarray(keys, dtype=np.int64)
    except (OverflowError, TypeError, ValueError):  # outside int64 range
        return None
